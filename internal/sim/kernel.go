package sim

import (
	"errors"
	"fmt"
	"iter"
	"strings"
	"sync/atomic"
)

// ErrDeadlock is returned by Run when processes remain blocked on events but
// no process is runnable, so virtual time can no longer advance. Run wraps it
// with the names of the blocked processes and the events they wait on; test
// with errors.Is.
var ErrDeadlock = errors.New("sim: deadlock: processes blocked with empty run queue")

// procState tracks where a process is in its lifecycle.
type procState uint8

const (
	procNew procState = iota
	procRunnable
	procRunning
	procWaiting // blocked on an Event
	procPooled  // function returned; coroutine parked for reuse by Spawn
	procDone
)

// abortSignal is panicked into a process coroutine to unwind it when the
// kernel shuts down mid-simulation.
type abortSignal struct{}

// totalEvents accumulates scheduled events across every kernel in the
// process, flushed once per Run/RunUntil call. It feeds host-side
// simulation-rate reporting (ccbench -json) and costs nothing on the
// per-event hot path.
var totalEvents atomic.Uint64

// TotalEvents returns the number of simulation events executed by all
// kernels in this process since it started. Deltas around a workload divided
// by wall-clock time give the host simulation rate in events per second.
func TotalEvents() uint64 { return totalEvents.Load() }

// Probe observes kernel scheduling for online model validation
// (internal/check). Event fires on slow-path event execution only: the
// run-next fast path advances the clock by construction (wake = now +
// non-negative delta), so it needs no monotonicity check and stays free of
// probe branches. RunEnd fires when Run or RunUntil returns, giving checkers
// a quiescent point for full validation passes.
type Probe interface {
	Event(now Time)
	RunEnd(now Time)
}

// Proc is a simulated process. A Proc's function runs on its own coroutine
// (an iter.Pull-backed goroutine resumed by direct coroutine switches, never
// through the Go scheduler), and the kernel guarantees that at most one
// process executes at any moment, so processes may freely share model state
// without synchronization.
//
// All Proc methods must be called from the process's own coroutine while it
// is running.
type Proc struct {
	k     *Kernel
	name  string
	id    int
	state procState

	wake Time // scheduled resume time while runnable
	seq  uint64
	fn   func(*Proc) // current body; rebound when a pooled proc is respawned

	// Coroutine control. resume transfers execution into the process and
	// returns when it parks (true) or its function returns (false); yield
	// transfers execution back to the kernel's run loop and returns false
	// when the process is being aborted; cancel unwinds a parked process.
	// Each pair of transfers is a runtime coroutine switch — roughly half
	// the cost of a blocking channel handoff, and free of scheduler state.
	resume func() (struct{}, bool)
	cancel func()
	yield  func(struct{}) bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Sleep advances virtual time for this process by d, yielding to any other
// process scheduled earlier. Negative durations are treated as zero.
//
//ccnic:noalloc
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.wake = p.k.now + d
	p.park(procRunnable)
}

// Yield reschedules the process at the current time, behind every other
// process already scheduled at this time.
//
//ccnic:noalloc
func (p *Proc) Yield() { p.Sleep(0) }

// Wait blocks until ev is signaled. Waiters resume in FIFO order at the
// virtual time of the Signal call.
//
//ccnic:noalloc
func (p *Proc) Wait(ev *Event) {
	k := ev.k
	ev.waiters = append(ev.waiters, p)
	if !ev.reg {
		// Registration-on-wait: the kernel tracks only events that have
		// waiters (plus recently-drained ones until the next compaction),
		// so long-lived kernels do not accumulate every event ever made.
		ev.reg = true
		k.waitEvents = append(k.waitEvents, ev)
		if len(k.waitEvents) >= k.compactAt {
			k.compactWaitEvents()
		}
	}
	p.wake = k.now
	p.park(procWaiting)
}

// park picks the next runnable process and hands the execution baton back to
// the kernel's run loop, which resumes that process. This is the kernel's
// hot path: scheduling runs inline on the parking coroutine, so a
// park-resume cycle costs one coroutine round trip through the run loop —
// and no switch at all when the parking process is itself the next to run.
//
//ccnic:noalloc
func (p *Proc) park(s procState) {
	k := p.k
	p.state = s
	if s == procRunnable {
		// Run-next fast path: p wakes strictly before every scheduled
		// process, so it would be popped right back; skip the heap and the
		// coroutine switches entirely. Strict inequality preserves FIFO
		// ordering at equal instants (a re-pushed proc would sort behind
		// its peers).
		if top := k.heap.peek(); (top == nil || p.wake < top.wake) &&
			!k.stopped && (k.deadline < 0 || p.wake <= k.deadline) {
			if p.wake > k.now {
				k.now = p.wake
			}
			k.events++
			p.state = procRunning
			return
		}
		k.seq++
		p.seq = k.seq
		if k.stopped {
			k.heap.push(p) // Shutdown will abort p from the heap
			k.hand = nil
		} else {
			// One sift instead of a push and a pop.
			q := k.heap.pushpop(p)
			if k.deadline >= 0 && q.wake > k.deadline {
				k.push(q) // reschedule for a future Run
				if k.now < k.deadline {
					k.now = k.deadline
				}
				k.hand = nil
			} else {
				if q.wake > k.now {
					k.now = q.wake
				}
				k.events++
				if k.probe != nil {
					k.probe.Event(k.now)
				}
				if q == p {
					p.state = procRunning
					return
				}
				k.hand = q
			}
		}
	} else {
		k.waiting++
		k.hand = k.next()
	}
	if !p.yield(struct{}{}) {
		panic(abortSignal{})
	}
	p.state = procRunning
}

// Kernel is a discrete-event simulation kernel. Create one with New, add
// processes with Spawn, then call Run or RunUntil.
//
// A Kernel and all its processes run on whichever goroutine calls Run: the
// processes are coroutines, resumed by direct switches. That makes a kernel
// single-threaded by construction and lets a multi-shard runtime (see
// internal/sim/shard) drive one kernel per worker goroutine with no locking
// inside the simulation itself.
type Kernel struct {
	now      Time
	heap     procHeap
	seq      uint64
	nextID   int
	live     int // spawned and not yet done
	waiting  int // procs blocked on events
	running  bool
	stopped  bool
	deadline Time // active RunUntil deadline, or -1
	events   uint64

	// hand is the process a parking coroutine selected for the run loop to
	// resume next; nil ends the run (stop, deadline, completion, deadlock).
	hand *Proc

	// waitEvents holds events that currently have waiters (conservatively:
	// drained events linger until compaction), for Shutdown and deadlock
	// reporting. Compaction keeps it within 2x the live waited-on set.
	waitEvents []*Event
	compactAt  int

	// pool holds finished processes whose coroutines are parked for reuse
	// by Spawn (see Spawn). Bounded by the high-water mark of live procs.
	pool []*Proc

	// probe is the optional scheduling observer; nil in normal runs.
	probe Probe
}

// SetProbe installs (or removes, with nil) the kernel's scheduling probe.
func (k *Kernel) SetProbe(p Probe) { k.probe = p }

// New creates an empty kernel at time zero.
func New() *Kernel {
	return &Kernel{
		deadline:  -1,
		compactAt: 64,
	}
}

// Now returns the current virtual time.
//ccnic:noalloc
func (k *Kernel) Now() Time { return k.now }

// Live returns the number of spawned processes that have not finished.
func (k *Kernel) Live() int { return k.live }

// Events returns the number of simulation events (process resumptions) the
// kernel has executed.
func (k *Kernel) Events() uint64 { return k.events }

// NextWake returns the virtual time of the earliest scheduled process and
// true, or (0, false) when no process is runnable (the kernel is idle until
// an external signal or injected process arrives). Shard runtimes use this
// as the kernel's event-horizon floor when computing safe advance windows.
func (k *Kernel) NextWake() (Time, bool) {
	if top := k.heap.peek(); top != nil {
		return top.wake, true
	}
	return 0, false
}

// Spawn creates a process that will first run at the current virtual time.
// It may be called before Run or from a running process.
//
// Finished processes park their coroutine in a per-kernel pool, and Spawn
// reuses one when available: the dominant spawn costs (a fresh goroutine,
// its stack, and the iter.Pull plumbing) are then paid only for the
// high-water mark of concurrently live processes, not per spawn. Workloads
// that spawn a short-lived process per message run almost entirely on warm,
// recycled coroutines. Reuse is LIFO and single-threaded, so it cannot
// perturb scheduling order: a spawned process is identified by its fresh
// heap position (wake, seq), never by which coroutine executes it.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	if n := len(k.pool); n > 0 {
		p := k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
		p.name = name
		p.fn = fn
		p.state = procNew
		p.wake = k.now
		k.live++
		k.push(p)
		return p
	}
	p := &Proc{
		k:     k,
		name:  name,
		id:    k.nextID,
		state: procNew,
		wake:  k.now,
		fn:    fn,
	}
	k.nextID++
	k.live++
	p.resume, p.cancel = iter.Pull(func(yield func(struct{}) bool) {
		p.yield = yield
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok {
					panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
				}
			}
		}()
		for {
			p.fn(p)
			if !p.retire() {
				return
			}
		}
	})
	k.push(p)
	return p
}

// retire parks a finished process's coroutine in the kernel pool and hands
// the run loop its successor. It returns true when the coroutine has been
// respawned with a new body, false when the kernel cancelled it (Shutdown
// draining the pool) and the coroutine must exit.
func (p *Proc) retire() bool {
	k := p.k
	k.live--
	p.state = procPooled
	p.fn = nil
	k.pool = append(k.pool, p)
	k.hand = k.next()
	if !p.yield(struct{}{}) {
		return false
	}
	p.state = procRunning
	return true
}

// Stop requests that Run return after the current process parks; remaining
// processes are then aborted. Call from a running process or before Run.
func (k *Kernel) Stop() { k.stopped = true }

// next pops the next process to run and advances the clock, or returns nil
// when the run is over (stop, deadline reached, completion, or deadlock —
// the caller classifies from kernel state).
//
//ccnic:noalloc
func (k *Kernel) next() *Proc {
	if k.stopped {
		return nil
	}
	p := k.heap.pop()
	if p == nil {
		if k.waiting > 0 && k.deadline >= 0 && k.now < k.deadline {
			// Event waiters are legitimately idle under a deadline: a
			// later Run may still signal them.
			k.now = k.deadline
		}
		return nil
	}
	if k.deadline >= 0 && p.wake > k.deadline {
		k.push(p) // reschedule for a future Run
		if k.now < k.deadline {
			k.now = k.deadline
		}
		return nil
	}
	if p.wake > k.now {
		k.now = p.wake
	}
	k.events++
	if k.probe != nil {
		k.probe.Event(k.now)
	}
	return p
}

// push schedules p on the run queue at p.wake.
//
//ccnic:noalloc
func (k *Kernel) push(p *Proc) {
	k.seq++
	p.seq = k.seq
	k.heap.push(p)
}

// Run executes processes in virtual-time order until all have finished, Stop
// is called, or deadlock is detected. It returns an error wrapping
// ErrDeadlock if processes remain blocked on events that nothing can signal.
func (k *Kernel) Run() error { return k.run(-1) }

// RunUntil executes like Run but also returns (with nil error) once the next
// scheduled process would run strictly after deadline; the clock is then set
// to deadline. Processes left parked remain resumable by a later Run or
// RunUntil call, and can be discarded with Shutdown.
func (k *Kernel) RunUntil(deadline Time) error { return k.run(deadline) }

func (k *Kernel) run(deadline Time) error {
	if k.running {
		return errors.New("sim: kernel already running")
	}
	k.running = true
	k.deadline = deadline
	start := k.events
	defer func() {
		k.running = false
		k.deadline = -1
		totalEvents.Add(k.events - start)
	}()
	// The run loop: resume the next process; when it parks it has already
	// selected its successor (k.hand), and when its function returns the
	// loop retires it and pops the heap directly.
	for p := k.next(); p != nil; {
		k.hand = nil
		if _, parked := p.resume(); !parked {
			p.state = procDone
			k.live--
			p = k.next()
			continue
		}
		p = k.hand
	}
	if k.probe != nil {
		k.probe.RunEnd(k.now)
	}
	if k.stopped {
		k.stopped = false
		k.Shutdown()
		return nil
	}
	if deadline < 0 && k.waiting > 0 {
		return k.deadlockError()
	}
	return nil
}

// deadlockError describes which processes are blocked and on what.
func (k *Kernel) deadlockError() error {
	const maxListed = 16
	var b strings.Builder
	n := 0
	for _, ev := range k.waitEvents {
		for _, p := range ev.waiters {
			if n == maxListed {
				fmt.Fprintf(&b, ", ... (%d blocked total)", k.waiting)
				break
			}
			if n > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q on event %q", p.name, ev.name)
			n++
		}
		if n == maxListed {
			break
		}
	}
	if b.Len() == 0 {
		return ErrDeadlock
	}
	return fmt.Errorf("%w: %s", ErrDeadlock, b.String())
}

// Shutdown aborts every live process, unwinding its coroutine. The kernel
// must not be running. After Shutdown the kernel can still Spawn and Run new
// processes, though typically a fresh kernel is created instead.
func (k *Kernel) Shutdown() {
	for {
		p := k.heap.pop()
		if p == nil {
			break
		}
		k.abort(p)
	}
	for _, ev := range k.waitEvents {
		for _, p := range ev.waiters {
			k.waiting--
			k.abort(p)
		}
		ev.waiters = nil
		ev.reg = false
	}
	k.waitEvents = k.waitEvents[:0]
	// Drain the reuse pool: cancelling a pooled coroutine makes its pending
	// yield return false, so it exits its respawn loop. Pooled procs already
	// left the live count when they retired.
	for i, p := range k.pool {
		p.cancel()
		p.state = procDone
		k.pool[i] = nil
	}
	k.pool = k.pool[:0]
}

// abort unwinds a parked (or never-started) process synchronously: cancel
// makes the process's pending yield return false, which panics abortSignal
// through its function; a process that never ran simply never starts.
func (k *Kernel) abort(p *Proc) {
	if p.state == procDone {
		return
	}
	p.cancel()
	p.state = procDone
	k.live--
}

// compactWaitEvents drops events that no longer have waiters and doubles the
// next compaction threshold, bounding the tracked set to 2x the live one.
//
//ccnic:noalloc
func (k *Kernel) compactWaitEvents() {
	kept := k.waitEvents[:0]
	for _, ev := range k.waitEvents {
		if len(ev.waiters) > 0 {
			kept = append(kept, ev)
		} else {
			ev.reg = false
		}
	}
	for i := len(kept); i < len(k.waitEvents); i++ {
		k.waitEvents[i] = nil
	}
	k.waitEvents = kept
	k.compactAt = 2 * len(kept)
	if k.compactAt < 64 {
		k.compactAt = 64
	}
}

// Event is a broadcast wakeup primitive. Processes block on it with
// Proc.Wait; Signal wakes every current waiter at the current virtual time.
type Event struct {
	k       *Kernel
	name    string
	waiters []*Proc
	reg     bool // tracked in k.waitEvents
}

// NewEvent creates an event attached to the kernel. Events cost the kernel
// nothing until a process waits on them.
func (k *Kernel) NewEvent(name string) *Event {
	return &Event{k: k, name: name}
}

// Signal wakes all processes currently waiting on the event. They resume at
// the current virtual time, in the order they began waiting. Safe to call
// when there are no waiters.
//
//ccnic:noalloc
func (ev *Event) Signal() {
	for _, p := range ev.waiters {
		p.wake = ev.k.now
		p.state = procRunnable
		ev.k.waiting--
		ev.k.push(p)
	}
	ev.waiters = ev.waiters[:0]
}

// Waiters returns the number of processes blocked on the event.
func (ev *Event) Waiters() int { return len(ev.waiters) }
