package sim_test

import (
	"fmt"

	"ccnic/internal/sim"
)

// Example shows the kernel's cooperative process model: two processes
// interleave in strict virtual-time order, and an event transfers control.
func Example() {
	k := sim.New()
	ready := k.NewEvent("ready")

	k.Spawn("producer", func(p *sim.Proc) {
		p.Sleep(100 * sim.Nanosecond)
		fmt.Printf("[%v] producer: publishing\n", p.Now())
		ready.Signal()
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		fmt.Printf("[%v] consumer: waiting\n", p.Now())
		p.Wait(ready)
		fmt.Printf("[%v] consumer: got it\n", p.Now())
	})

	if err := k.Run(); err != nil {
		panic(err)
	}
	// Output:
	// [0ps] consumer: waiting
	// [100.00ns] producer: publishing
	// [100.00ns] consumer: got it
}

// ExampleResource shows busy-until accounting: the second acquisition of a
// shared facility queues behind the first.
func ExampleResource() {
	var link sim.Resource
	delay1 := link.Acquire(0, 10*sim.Nanosecond)
	delay2 := link.Acquire(2*sim.Nanosecond, 10*sim.Nanosecond)
	fmt.Printf("first queued %v, second queued %v\n", delay1, delay2)
	// Output:
	// first queued 0ps, second queued 8.00ns
}
