package sim

// Resource models a facility that serves one request at a time with
// busy-until semantics: a request arriving while the resource is busy queues
// (in virtual time) until the in-progress holds complete. It is the building
// block for links, DMA engines, and device pipelines.
type Resource struct {
	busyUntil Time
	busyTotal Time // accumulated occupied time, for utilization accounting
}

// Acquire reserves the resource for hold starting no earlier than now.
// It returns the queueing delay the caller experiences before its hold
// begins. The caller is expected to advance its own clock by delay+hold
// (or just delay, for posted operations that do not wait for completion).
//
// Acquire sits on the simulator's per-message hot path (every interconnect
// and PCIe transfer funnels through it) and must stay allocation-free; the
// idle case falls through with a single compare.
//
//ccnic:noalloc
func (r *Resource) Acquire(now, hold Time) (delay Time) {
	if hold < 0 {
		hold = 0
	}
	r.busyTotal += hold
	if r.busyUntil <= now {
		r.busyUntil = now + hold
		return 0
	}
	delay = r.busyUntil - now
	r.busyUntil += hold
	return delay
}

// BusyUntil returns the virtual time at which the resource becomes free.
func (r *Resource) BusyUntil() Time { return r.busyUntil }

// BusyTotal returns the total time the resource has been occupied.
func (r *Resource) BusyTotal() Time { return r.busyTotal }

// Reset clears accounting and frees the resource immediately.
func (r *Resource) Reset() { r.busyUntil, r.busyTotal = 0, 0 }

// Backlog returns how far the resource is booked past now (zero if free).
func (r *Resource) Backlog(now Time) Time {
	if r.busyUntil <= now {
		return 0
	}
	return r.busyUntil - now
}
