package sim

// procHeap is a binary min-heap of processes ordered by (wake, seq). The seq
// tiebreak makes scheduling FIFO among processes waking at the same instant,
// which keeps simulations deterministic.
type procHeap struct {
	a []*Proc
}

func (h *procHeap) len() int { return len(h.a) }

func (h *procHeap) less(i, j int) bool {
	pi, pj := h.a[i], h.a[j]
	if pi.wake != pj.wake {
		return pi.wake < pj.wake
	}
	return pi.seq < pj.seq
}

func (h *procHeap) push(p *Proc) {
	h.a = append(h.a, p)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *procHeap) pop() *Proc {
	if len(h.a) == 0 {
		return nil
	}
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	h.siftDown(0)
	return top
}

func (h *procHeap) siftDown(i int) {
	n := len(h.a)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
}

// peek returns the earliest process without removing it, or nil.
func (h *procHeap) peek() *Proc {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}
