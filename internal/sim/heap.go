package sim

// procHeap is a binary min-heap of processes ordered by (wake, seq). The seq
// tiebreak makes scheduling FIFO among processes waking at the same instant,
// which keeps simulations deterministic.
type procHeap struct {
	a []*Proc
}

//ccnic:noalloc
func (h *procHeap) len() int { return len(h.a) }

// lessProc orders by (wake, seq): earlier wake first, FIFO among equals.
//
//ccnic:noalloc
func lessProc(a, b *Proc) bool {
	if a.wake != b.wake {
		return a.wake < b.wake
	}
	return a.seq < b.seq
}

//ccnic:noalloc
func (h *procHeap) less(i, j int) bool { return lessProc(h.a[i], h.a[j]) }

//ccnic:noalloc
func (h *procHeap) push(p *Proc) {
	h.a = append(h.a, p)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

//ccnic:noalloc
func (h *procHeap) pop() *Proc {
	if len(h.a) == 0 {
		return nil
	}
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	h.siftDown(0)
	return top
}

//ccnic:noalloc
func (h *procHeap) siftDown(i int) {
	n := len(h.a)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && h.less(left, smallest) {
			smallest = left
		}
		if right < n && h.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
}

// pushpop pushes p and pops the minimum of heap ∪ {p} in a single sift —
// half the work of a push followed by a pop, and no heap movement at all
// when p itself is the minimum. It is the kernel park path's common case.
//
//ccnic:noalloc
func (h *procHeap) pushpop(p *Proc) *Proc {
	if len(h.a) == 0 || lessProc(p, h.a[0]) {
		return p
	}
	top := h.a[0]
	h.a[0] = p
	h.siftDown(0)
	return top
}

// peek returns the earliest process without removing it, or nil.
//
//ccnic:noalloc
func (h *procHeap) peek() *Proc {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}
