package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2.00ns"},
		{3 * Microsecond, "3.00us"},
		{4 * Millisecond, "4.000ms"},
		{2 * Second, "2.0000s"},
		{-2 * Nanosecond, "-2.00ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Nanosecond).Microseconds(); got != 1.5 {
		t.Errorf("Microseconds = %v, want 1.5", got)
	}
	if got := FromNanos(2.5); got != 2500*Picosecond {
		t.Errorf("FromNanos(2.5) = %v, want 2500ps", int64(got))
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %v, want 2", got)
	}
}

func TestSingleProcAdvancesTime(t *testing.T) {
	k := New()
	var end Time
	k.Spawn("p", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		p.Sleep(5 * Nanosecond)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 15*Nanosecond {
		t.Errorf("end time = %v, want 15ns", end)
	}
	if k.Live() != 0 {
		t.Errorf("live = %d, want 0", k.Live())
	}
}

func TestInterleavingIsTimeOrdered(t *testing.T) {
	k := New()
	var order []string
	k.Spawn("slow", func(p *Proc) {
		p.Sleep(20 * Nanosecond)
		order = append(order, "slow@20")
	})
	k.Spawn("fast", func(p *Proc) {
		p.Sleep(5 * Nanosecond)
		order = append(order, "fast@5")
		p.Sleep(30 * Nanosecond)
		order = append(order, "fast@35")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"fast@5", "slow@20", "fast@35"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Sleep(10 * Nanosecond)
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestEventSignalWakesWaiters(t *testing.T) {
	k := New()
	ev := k.NewEvent("e")
	var woke []Time
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) {
			p.Wait(ev)
			woke = append(woke, p.Now())
		})
	}
	k.Spawn("signaler", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		if ev.Waiters() != 3 {
			t.Errorf("waiters = %d, want 3", ev.Waiters())
		}
		ev.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != 100*Nanosecond {
			t.Errorf("waiter woke at %v, want 100ns", w)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	ev := k.NewEvent("never")
	k.Spawn("stuck", func(p *Proc) { p.Wait(ev) })
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	// The error must name the blocked process and the event it waits on.
	for _, want := range []string{`"stuck"`, `"never"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("deadlock error %q does not mention %s", err, want)
		}
	}
	k.Shutdown()
	if k.Live() != 0 {
		t.Errorf("live after Shutdown = %d, want 0", k.Live())
	}
}

func TestRunUntilPausesAndResumes(t *testing.T) {
	k := New()
	var ticks int
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * Nanosecond)
			ticks++
		}
	})
	if err := k.RunUntil(35 * Nanosecond); err != nil {
		t.Fatal(err)
	}
	if ticks != 3 {
		t.Errorf("ticks after 35ns = %d, want 3", ticks)
	}
	if k.Now() != 35*Nanosecond {
		t.Errorf("now = %v, want 35ns", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ticks != 10 {
		t.Errorf("ticks after full run = %d, want 10", ticks)
	}
}

func TestStopAbortsProcesses(t *testing.T) {
	k := New()
	k.Spawn("forever", func(p *Proc) {
		for {
			p.Sleep(Nanosecond)
		}
	})
	k.Spawn("stopper", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Live() != 0 {
		t.Errorf("live = %d, want 0 after Stop", k.Live())
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	k := New()
	var childRan Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(50 * Nanosecond)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(25 * Nanosecond)
			childRan = c.Now()
		})
		p.Sleep(100 * Nanosecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childRan != 75*Nanosecond {
		t.Errorf("child finished at %v, want 75ns", childRan)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		p.Sleep(-5 * Nanosecond)
		if p.Now() != 0 {
			t.Errorf("now = %v, want 0", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcName(t *testing.T) {
	k := New()
	k.Spawn("worker-7", func(p *Proc) {
		if p.Name() != "worker-7" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() mismatch")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestKernelDeterminism runs the same mixed workload twice and requires an
// identical trace — the core guarantee everything else relies on.
func TestKernelDeterminism(t *testing.T) {
	run := func() []Time {
		k := New()
		var trace []Time
		ev := k.NewEvent("e")
		for i := 0; i < 8; i++ {
			d := Time(i+1) * 7 * Nanosecond
			k.Spawn("p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Sleep(d)
					trace = append(trace, p.Now())
					if j == 10 {
						ev.Signal()
					}
				}
			})
		}
		k.Spawn("waiter", func(p *Proc) {
			p.Wait(ev)
			trace = append(trace, p.Now())
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// A RunUntil deadline exactly equal to a wake time runs that wake (the cut
// is strictly-after), and the clock lands exactly on the deadline.
func TestRunUntilDeadlineEqualsWake(t *testing.T) {
	k := New()
	var wokeAt []Time
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10 * Nanosecond)
			wokeAt = append(wokeAt, p.Now())
		}
	})
	if err := k.RunUntil(30 * Nanosecond); err != nil {
		t.Fatal(err)
	}
	if len(wokeAt) != 3 || wokeAt[2] != 30*Nanosecond {
		t.Errorf("wakes = %v, want exactly [10ns 20ns 30ns]", wokeAt)
	}
	if k.Now() != 30*Nanosecond {
		t.Errorf("now = %v, want 30ns", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(wokeAt) != 5 {
		t.Errorf("wakes after full run = %d, want 5", len(wokeAt))
	}
}

// Shutdown must unwind waiters spread across several events, including
// events that also have already-drained peers.
func TestShutdownWithWaitersOnMultipleEvents(t *testing.T) {
	k := New()
	evs := []*Event{k.NewEvent("a"), k.NewEvent("b"), k.NewEvent("c")}
	drained := k.NewEvent("drained")
	for i, ev := range evs {
		ev := ev
		for j := 0; j <= i; j++ {
			k.Spawn("w", func(p *Proc) { p.Wait(ev) })
		}
	}
	k.Spawn("quick", func(p *Proc) { p.Wait(drained) })
	k.Spawn("sig", func(p *Proc) {
		p.Sleep(Nanosecond)
		drained.Signal()
	})
	if err := k.RunUntil(10 * Nanosecond); err != nil {
		t.Fatal(err)
	}
	if got := evs[0].Waiters() + evs[1].Waiters() + evs[2].Waiters(); got != 6 {
		t.Fatalf("waiters before Shutdown = %d, want 6", got)
	}
	k.Shutdown()
	if k.Live() != 0 {
		t.Errorf("live after Shutdown = %d, want 0", k.Live())
	}
	for _, ev := range evs {
		if ev.Waiters() != 0 {
			t.Errorf("event %q still has %d waiters", ev.name, ev.Waiters())
		}
	}
}

// A kernel paused by RunUntil (with a proc parked past the deadline and a
// waiter parked on an event) must resume cleanly from a later Run.
func TestRerunAfterRunUntil(t *testing.T) {
	k := New()
	ev := k.NewEvent("go")
	var waiterWoke, sleeperWoke Time
	k.Spawn("waiter", func(p *Proc) {
		p.Wait(ev)
		waiterWoke = p.Now()
	})
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100 * Nanosecond)
		sleeperWoke = p.Now()
		ev.Signal()
	})
	if err := k.RunUntil(40 * Nanosecond); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 40*Nanosecond || waiterWoke != 0 || sleeperWoke != 0 {
		t.Fatalf("paused state wrong: now=%v waiter=%v sleeper=%v",
			k.Now(), waiterWoke, sleeperWoke)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if sleeperWoke != 100*Nanosecond || waiterWoke != 100*Nanosecond {
		t.Errorf("woke at (%v, %v), want both 100ns", sleeperWoke, waiterWoke)
	}
}

// The steady-state Sleep/Signal hot path must not allocate: parking,
// resuming, waiting, and signaling all recycle their storage once the heap
// and waiter slices have grown to workload size.
func TestSteadyStateZeroAllocs(t *testing.T) {
	k := New()
	ev := k.NewEvent("tick")
	k.Spawn("sleeper", func(p *Proc) {
		for {
			p.Sleep(3 * Nanosecond)
		}
	})
	k.Spawn("waiter", func(p *Proc) {
		for {
			p.Wait(ev)
		}
	})
	k.Spawn("signaler", func(p *Proc) {
		for {
			p.Sleep(10 * Nanosecond)
			ev.Signal()
		}
	})
	deadline := Time(0)
	step := func() {
		deadline += Microsecond
		if err := k.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm up: grow heap, waiter lists, and event registration
	if avg := testing.AllocsPerRun(50, step); avg != 0 {
		t.Errorf("steady-state Sleep/Signal allocates %v allocs/run, want 0", avg)
	}
	k.Shutdown()
}
func TestResourceProperties(t *testing.T) {
	f := func(holds []uint16) bool {
		var r Resource
		now := Time(0)
		prevBusy := Time(0)
		for _, h := range holds {
			hold := Time(h) * Picosecond
			delay := r.Acquire(now, hold)
			if delay < 0 {
				return false
			}
			if r.BusyUntil() < prevBusy {
				return false
			}
			wantDelay := Time(0)
			if prevBusy > now {
				wantDelay = prevBusy - now
			}
			if delay != wantDelay {
				return false
			}
			prevBusy = r.BusyUntil()
			now += hold / 2 // arrivals at half service rate: backlog grows
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResourceIdleThenBusy(t *testing.T) {
	var r Resource
	if d := r.Acquire(100, 50); d != 0 {
		t.Errorf("idle acquire delay = %d, want 0", d)
	}
	if d := r.Acquire(120, 50); d != 30 {
		t.Errorf("busy acquire delay = %d, want 30", d)
	}
	if r.BusyTotal() != 100 {
		t.Errorf("busyTotal = %d, want 100", r.BusyTotal())
	}
	if b := r.Backlog(150); b != 50 {
		t.Errorf("backlog = %d, want 50", b)
	}
	r.Reset()
	if r.BusyUntil() != 0 || r.BusyTotal() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestHeapOrdering(t *testing.T) {
	var h procHeap
	times := []Time{50, 10, 30, 10, 90, 20}
	for i, w := range times {
		h.push(&Proc{wake: w, seq: uint64(i)})
	}
	if h.peek().wake != 10 {
		t.Errorf("peek = %v, want 10", h.peek().wake)
	}
	var got []Time
	var seqs []uint64
	for {
		p := h.pop()
		if p == nil {
			break
		}
		got = append(got, p.wake)
		seqs = append(seqs, p.seq)
	}
	want := []Time{10, 10, 20, 30, 50, 90}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
	// Equal wake times must preserve insertion order (seq 1 before seq 3).
	if seqs[0] != 1 || seqs[1] != 3 {
		t.Errorf("tie-break order = %v, want seq 1 then 3", seqs[:2])
	}
	if h.pop() != nil {
		t.Error("pop on empty heap should return nil")
	}
}
