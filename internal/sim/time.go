// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel schedules cooperative processes (coroutines, pooled and reused
// across Spawn calls) so that exactly one process runs at a time, in strict
// virtual-time order. Model code therefore needs no locks, and every run with
// the same inputs produces identical results: there is no wall-clock or
// scheduler nondeterminism. Partitioned models with several kernels advancing
// in parallel are the job of the sim/shard subpackage.
//
// Virtual time is measured in picoseconds so that sub-nanosecond costs (for
// example per-byte link serialization) accumulate without rounding error.
package sim

import "fmt"

// Time is a virtual time instant or duration in picoseconds.
type Time int64

// Convenient duration units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds returns t as a floating point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns t as a floating point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromNanos converts a floating point number of nanoseconds to a Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}
