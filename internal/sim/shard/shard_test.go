package shard

import (
	"fmt"
	"strings"
	"testing"

	"ccnic/internal/sim"
)

// ringModel builds n shards in a ring. Each shard runs a local ticker (pure
// intra-shard events) and relays a token to its successor with the given
// link latency, recording every delivery in a per-shard trace. Returns the
// engine and the per-shard traces.
func ringModel(n, workers int, lat sim.Time) (*Engine, []*[]string) {
	e := NewEngine(workers)
	traces := make([]*[]string, n)
	shards := make([]*Shard, n)
	for i := 0; i < n; i++ {
		t := &[]string{}
		traces[i] = t
		shards[i] = e.NewShard(fmt.Sprintf("s%d", i), sim.New())
	}
	links := make([]*Link, n)
	for i := 0; i < n; i++ {
		dst := (i + 1) % n
		tr := traces[dst]
		out := links // captured; filled below
		i := i
		links[i] = e.Connect(shards[i], shards[dst], lat, 0, func(p *sim.Proc, payload any) {
			hop := payload.(int)
			*tr = append(*tr, fmt.Sprintf("%d@%v hop=%d", dst, p.Now(), hop))
			if hop < 40 {
				// Local work before relaying, then forward on this shard's
				// own out-link.
				p.Sleep(3 * sim.Nanosecond)
				out[(i+1)%n].Send(p, lat, hop+1)
			}
		})
	}
	// Local tickers: intra-shard load at incommensurate periods.
	for i, s := range shards {
		tr := traces[i]
		id := i
		period := sim.Time(7+3*i) * sim.Nanosecond
		s.Kernel().Spawn("ticker", func(p *sim.Proc) {
			for j := 0; j < 50; j++ {
				p.Sleep(period)
				*tr = append(*tr, fmt.Sprintf("%d@%v tick", id, p.Now()))
			}
		})
	}
	// Seed the token from shard 0.
	shards[0].Kernel().Spawn("seed", func(p *sim.Proc) {
		p.Sleep(5 * sim.Nanosecond)
		links[0].Send(p, lat, 1)
	})
	return e, traces
}

func flatten(traces []*[]string) string {
	var b strings.Builder
	for i, t := range traces {
		fmt.Fprintf(&b, "-- shard %d --\n", i)
		for _, line := range *t {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func runRing(t *testing.T, n, workers int) string {
	t.Helper()
	e, traces := ringModel(n, workers, 20*sim.Nanosecond)
	if err := e.Run(10 * sim.Microsecond); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return flatten(traces)
}

// TestWorkerCountInvariance is the engine's core guarantee: the merged event
// history is bit-identical for every worker budget, twice each.
func TestWorkerCountInvariance(t *testing.T) {
	ref := runRing(t, 4, 1)
	if !strings.Contains(ref, "hop=40") {
		t.Fatalf("token did not complete 40 hops:\n%s", ref)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			if got := runRing(t, 4, workers); got != ref {
				t.Fatalf("trace diverged at workers=%d rep=%d", workers, rep)
			}
		}
	}
}

// TestMatchesSingleKernel checks delivery timing against the analytically
// expected schedule: each hop is link latency plus 3ns of local work.
func TestMatchesSingleKernel(t *testing.T) {
	e, traces := ringModel(2, 1, 20*sim.Nanosecond)
	if err := e.Run(10 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	// Token seeded at 5ns, first delivery at 25ns, then every 23ns.
	want := 25 * sim.Nanosecond
	hop := 1
	for i := 0; hop <= 40; i = 1 - i {
		var found string
		for _, line := range *traces[(hop)%2] {
			if strings.Contains(line, fmt.Sprintf("hop=%d", hop)) {
				found = line
				break
			}
		}
		wantLine := fmt.Sprintf("%d@%v hop=%d", hop%2, want, hop)
		if found != wantLine {
			t.Fatalf("hop %d: got %q, want %q", hop, found, wantLine)
		}
		want += 23 * sim.Nanosecond
		hop++
	}
}

// TestQuiescence: with no work at all, Run returns immediately; with finite
// work, Run returns once everything drains even when until is far away.
func TestQuiescence(t *testing.T) {
	e := NewEngine(2)
	a := e.NewShard("a", sim.New())
	b := e.NewShard("b", sim.New())
	var got []sim.Time
	l := e.Connect(a, b, sim.Microsecond, 0, func(p *sim.Proc, payload any) {
		got = append(got, p.Now())
	})
	if err := e.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	a.Kernel().Spawn("one", func(p *sim.Proc) {
		p.Sleep(3 * sim.Microsecond)
		l.Send(p, sim.Microsecond, nil)
	})
	if err := e.Run(sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 4*sim.Microsecond {
		t.Fatalf("deliveries = %v, want [4µs]", got)
	}
}

// TestRepeatedRunContinues: messages beyond until stay queued and deliver on
// the next Run call.
func TestRepeatedRunContinues(t *testing.T) {
	e := NewEngine(1)
	a := e.NewShard("a", sim.New())
	b := e.NewShard("b", sim.New())
	var got []sim.Time
	l := e.Connect(a, b, sim.Microsecond, 0, func(p *sim.Proc, payload any) {
		got = append(got, p.Now())
	})
	a.Kernel().Spawn("late", func(p *sim.Proc) {
		p.Sleep(5 * sim.Microsecond)
		l.Send(p, 2*sim.Microsecond, nil)
	})
	if err := e.Run(6 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("message delivered before its time: %v", got)
	}
	if err := e.Run(10 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 7*sim.Microsecond {
		t.Fatalf("deliveries = %v, want [7µs]", got)
	}
}

// TestLookaheadViolation: sends below the declared minimum latency and sends
// from a foreign shard both panic in the model, which the engine surfaces as
// a run error naming the link.
func TestLookaheadViolation(t *testing.T) {
	expectErr := func(name, want string, spawnOnSrc bool, fn func(l *Link, p *sim.Proc)) {
		t.Helper()
		e := NewEngine(1)
		a := e.NewShard("a", sim.New())
		b := e.NewShard("b", sim.New())
		l := e.Connect(a, b, sim.Microsecond, 0, func(p *sim.Proc, payload any) {})
		k := a.Kernel()
		if !spawnOnSrc {
			k = b.Kernel()
		}
		k.Spawn(name, func(p *sim.Proc) { fn(l, p) })
		err := e.Run(sim.Second)
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want %q", name, err, want)
		}
	}
	expectErr("below-lookahead", "below the declared minimum latency", true,
		func(l *Link, p *sim.Proc) { l.Send(p, sim.Nanosecond, nil) })
	expectErr("foreign", "another shard", false,
		func(l *Link, p *sim.Proc) { l.Send(p, 2*sim.Microsecond, nil) })
}

// TestFIFOOverflow: a link's bounded capacity is enforced.
func TestFIFOOverflow(t *testing.T) {
	e := NewEngine(1)
	a := e.NewShard("a", sim.New())
	b := e.NewShard("b", sim.New())
	l := e.Connect(a, b, sim.Microsecond, 4, func(p *sim.Proc, payload any) {})
	a.Kernel().Spawn("flood", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			l.Send(p, sim.Microsecond, i)
		}
	})
	err := e.Run(sim.Second)
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("err = %v, want FIFO overflow", err)
	}
}

// TestZeroLookaheadRejected: links must declare strictly positive latency.
func TestZeroLookaheadRejected(t *testing.T) {
	e := NewEngine(1)
	a := e.NewShard("a", sim.New())
	b := e.NewShard("b", sim.New())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero lookahead")
		}
	}()
	e.Connect(a, b, 0, 0, func(p *sim.Proc, payload any) {})
}

// TestTransitiveWakeup reproduces the case one-hop floors get wrong: a quiet
// middle shard whose only activity is relaying a neighbor's message must not
// let its downstream neighbor run ahead of the relayed delivery.
func TestTransitiveWakeup(t *testing.T) {
	e := NewEngine(2)
	a := e.NewShard("a", sim.New())
	mid := e.NewShard("mid", sim.New())
	c := e.NewShard("c", sim.New())

	var order []string
	lMC := e.Connect(mid, c, sim.Nanosecond, 0, func(p *sim.Proc, payload any) {
		order = append(order, fmt.Sprintf("relay@%v", p.Now()))
	})
	e.Connect(a, mid, sim.Nanosecond, 0, func(p *sim.Proc, payload any) {
		// mid is otherwise idle: its only emission is this relay.
		lMC.Send(p, sim.Nanosecond, payload)
	})
	// c has dense local activity far in the future relative to the relay.
	c.Kernel().Spawn("local", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(10 * sim.Nanosecond)
			order = append(order, fmt.Sprintf("local@%v", p.Now()))
		}
	})
	a.Kernel().Spawn("src", func(p *sim.Proc) {
		p.Sleep(sim.Nanosecond)
		e.links[1].Send(p, sim.Nanosecond, "x")
	})
	if err := e.Run(sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	// Relay arrives at c at t=3ns, strictly before c's first local event at
	// 10ns; order must reflect that.
	want := fmt.Sprintf("relay@%v", 3*sim.Nanosecond)
	if len(order) == 0 || order[0] != want {
		t.Fatalf("order[0] = %v, want %s (one-hop floors would misorder)", order, want)
	}
}
