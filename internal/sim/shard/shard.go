// Package shard runs a partitioned simulation: several sim.Kernel instances
// (shards), each owning its own event heap and process set, advance
// concurrently under conservative lookahead synchronization.
//
// The model is partitioned at its natural seams — in CC-NIC terms, per-node
// pipelines whose only cross-node coupling is a physical link (UPI, PCIe, or
// a network hop) with a declared minimum latency. That minimum latency is
// the lookahead: a shard may safely advance its local clock to
//
//	horizon(i) = min over in-links (j->i) of floor(j) + minLatency(j->i)
//
// where floor(j) is the earliest instant shard j could still emit a message
// (its next scheduled wakeup, or an already-queued inbound delivery that
// could wake it). Because every link's minimum latency is strictly positive,
// every round strictly advances at least one shard — the classical
// conservative (CMB-style) progress guarantee.
//
// Execution is organized in barrier-synchronous rounds driven by Engine.Run:
//
//  1. compute every shard's floor, then every shard's horizon;
//  2. deterministically merge each shard's pending inbound messages with
//     delivery times within its horizon, ordered by (deliver time, source
//     shard, link sequence), and inject them as kernel processes;
//  3. run every shard's kernel to its horizon — in parallel on up to
//     `workers` OS goroutines, or inline when workers <= 1;
//  4. barrier: collect the messages each shard sent during the round into
//     the destination links' queues.
//
// Within a round each kernel is single-threaded (the sim package guarantee),
// each link outbox is written only by its source shard, and the engine alone
// touches link queues between rounds, so the runtime needs no locks beyond
// the barrier itself. Results are bit-identical for every worker count,
// including fully serial execution: the merge order and the round structure
// are pure functions of the model, never of goroutine scheduling.
//
// This package is the only place outside package sim itself where goroutines
// are legal (enforced by cclint's detlint); model code stays deterministic
// and single-threaded, and crosses shards only through Link.Send at declared
// boundaries (enforced by cclint's shardlint).
package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ccnic/internal/sim"
)

// never is a floor/horizon value meaning "no event can ever arrive".
const never = sim.Time(math.MaxInt64)

// DeliverFunc handles one cross-shard message on the destination shard. It
// runs as (part of) a simulation process on the destination kernel at the
// message's delivery time and may use the full kernel API (signal events,
// spawn processes, sleep).
type DeliverFunc func(p *sim.Proc, payload any)

// Engine coordinates a set of shards through conservative-lookahead rounds.
type Engine struct {
	workers int
	shards  []*Shard
	links   []*Link
	running bool

	// round scratch, reused across rounds to keep steady state light.
	floors   []sim.Time
	horizons []sim.Time
	merge    []Message
}

// NewEngine creates an engine that runs shard rounds on up to workers
// goroutines. workers <= 1 selects fully inline execution (no goroutines at
// all); any value produces bit-identical results.
func NewEngine(workers int) *Engine {
	if workers < 1 {
		workers = 1
	}
	return &Engine{workers: workers}
}

// Workers returns the configured worker-goroutine budget.
func (e *Engine) Workers() int { return e.workers }

// Shards returns the shards in creation (id) order.
func (e *Engine) Shards() []*Shard { return e.shards }

// Shard is one partition: a kernel plus its cross-shard link endpoints.
type Shard struct {
	id   int
	name string
	k    *sim.Kernel

	in  []*Link // links delivering to this shard
	out []*Link // links this shard sends on

	err error // first kernel error of the current round
}

// NewShard registers a kernel as a shard. The kernel must be driven only
// through the engine from this point on.
func (e *Engine) NewShard(name string, k *sim.Kernel) *Shard {
	s := &Shard{id: len(e.shards), name: name, k: k}
	e.shards = append(e.shards, s)
	return s
}

// ID returns the shard's stable id (creation order).
func (s *Shard) ID() int { return s.id }

// Name returns the shard's debug name.
func (s *Shard) Name() string { return s.name }

// Kernel returns the shard's kernel, for model construction and inspection
// between Engine.Run calls.
func (s *Shard) Kernel() *sim.Kernel { return s.k }

// Affine is implemented by model components that declare their shard
// affinity by exposing the kernel they issue events on (coherence.System,
// pcie.Endpoint, device.Device, ...).
type Affine interface {
	Kernel() *sim.Kernel
}

// Adopt asserts that a component belongs to this shard: its declared
// kernel must be the shard's kernel. Model assembly calls Adopt for every
// component it places, turning a mis-partitioned model — a component whose
// events would land on a foreign shard's heap — into an immediate, named
// panic instead of a silent causality violation.
func (s *Shard) Adopt(name string, c Affine) {
	if c.Kernel() != s.k {
		panic(fmt.Sprintf("shard: component %s adopted by shard %s but issues events on a foreign kernel",
			name, s.name))
	}
}

// Message is one cross-shard event in flight.
type Message struct {
	Deliver sim.Time // delivery instant on the destination shard
	Payload any

	src  int    // source shard id: first merge tiebreak
	link int    // destination-link id: second merge tiebreak
	seq  uint64 // per-link send sequence: final merge tiebreak
}

// Link is a declared shard boundary: a unidirectional, bounded, SPSC channel
// from one shard to another with a strictly positive minimum latency that
// serves as the destination's lookahead.
type Link struct {
	id       int
	src, dst *Shard
	minLat   sim.Time
	capacity int
	deliver  DeliverFunc

	seq    uint64
	outbox []Message // written by src's shard during a round
	queue  []Message // pending at dst, engine-owned between rounds
}

// Connect declares a link from src to dst with the given minimum latency
// (the lookahead, strictly positive) and FIFO capacity (messages in flight;
// <= 0 selects a generous default). deliver runs on dst's kernel for each
// message.
func (e *Engine) Connect(src, dst *Shard, minLat sim.Time, capacity int, deliver DeliverFunc) *Link {
	if minLat <= 0 {
		panic("shard: link minimum latency must be strictly positive (it is the lookahead)")
	}
	if src == dst {
		panic("shard: a link must cross shards")
	}
	if capacity <= 0 {
		capacity = 4096
	}
	l := &Link{
		id:       len(e.links),
		src:      src,
		dst:      dst,
		minLat:   minLat,
		capacity: capacity,
		deliver:  deliver,
	}
	e.links = append(e.links, l)
	src.out = append(src.out, l)
	dst.in = append(dst.in, l)
	return l
}

// MinLatency returns the link's declared minimum latency (the lookahead).
func (l *Link) MinLatency() sim.Time { return l.minLat }

// Send queues a message across the link, to be delivered delay after the
// source shard's current instant. It must be called from a process of the
// source shard (the declared boundary), and delay must be at least the
// link's minimum latency — both are checked, because either violation would
// silently break the conservative horizon math.
func (l *Link) Send(p *sim.Proc, delay sim.Time, payload any) {
	if p.Kernel() != l.src.k {
		panic(fmt.Sprintf("shard: Send on link %s->%s from a process of another shard",
			l.src.name, l.dst.name))
	}
	if delay < l.minLat {
		panic(fmt.Sprintf("shard: Send on link %s->%s with delay %v below the declared minimum latency %v",
			l.src.name, l.dst.name, delay, l.minLat))
	}
	if len(l.outbox)+len(l.queue) >= l.capacity {
		panic(fmt.Sprintf("shard: link %s->%s FIFO overflow (capacity %d)",
			l.src.name, l.dst.name, l.capacity))
	}
	l.seq++
	l.outbox = append(l.outbox, Message{
		Deliver: p.Now() + delay,
		Payload: payload,
		src:     l.src.id,
		link:    l.id,
		seq:     l.seq,
	})
}

// localFloor returns the earliest instant the shard could wake from its own
// state: its kernel's next scheduled wakeup or the earliest pending inbound
// delivery, whichever comes first; never if both are absent.
func (e *Engine) localFloor(s *Shard) sim.Time {
	f := never
	if wake, ok := s.k.NextWake(); ok {
		f = wake
	}
	for _, l := range s.in {
		for i := range l.queue {
			if l.queue[i].Deliver < f {
				f = l.queue[i].Deliver
			}
		}
	}
	return f
}

// relaxFloors lowers each shard's floor to the conservative fixpoint
//
//	floor(i) = min(localFloor(i), min over in-links (floor(src) + minLat))
//
// One-hop floors alone are unsafe: a quiet shard can be woken by a neighbor
// earlier than its own next event and relay a message onward, so "earliest
// possible emission" must propagate transitively. Relaxation terminates
// because floors only decrease, in whole-picosecond steps, and every link
// latency is strictly positive (the classic Bellman-Ford argument).
func (e *Engine) relaxFloors() {
	for changed := true; changed; {
		changed = false
		for _, l := range e.links {
			f := e.floors[l.src.id]
			if f == never {
				continue
			}
			if v := f + l.minLat; v < e.floors[l.dst.id] {
				e.floors[l.dst.id] = v
				changed = true
			}
		}
	}
}

// Run advances all shards to virtual time `until`. It returns when every
// shard has reached `until`, or earlier when the whole system is quiescent
// (no scheduled process and no message in flight anywhere). Repeated calls
// with increasing `until` continue the same simulation.
func (e *Engine) Run(until sim.Time) error {
	if e.running {
		return fmt.Errorf("shard: engine already running")
	}
	if len(e.shards) == 0 {
		return nil
	}
	e.running = true
	defer func() { e.running = false }()

	e.floors = e.floors[:0]
	e.horizons = e.horizons[:0]
	for range e.shards {
		e.floors = append(e.floors, 0)
		e.horizons = append(e.horizons, 0)
	}

	for {
		// Phase 1: floors (relaxed to the conservative fixpoint), then
		// horizons from the declared lookaheads.
		quiescent := true
		for i, s := range e.shards {
			e.floors[i] = e.localFloor(s)
			if e.floors[i] != never {
				quiescent = false
			}
		}
		if quiescent {
			return nil
		}
		e.relaxFloors()
		for i, s := range e.shards {
			h := until
			for _, l := range s.in {
				if f := e.floors[l.src.id]; f != never && f+l.minLat < h {
					h = f + l.minLat
				}
			}
			e.horizons[i] = h
		}

		// Phase 2: deterministic merge-and-inject, then run each shard
		// that has an event inside its horizon. (A shard whose clock lags
		// its horizon but has no event to execute is skipped: an empty
		// kernel cannot advance its own clock, and running it would spin.)
		ran := 0
		for i, s := range e.shards {
			e.inject(s, e.horizons[i])
			if firstWake(s.k) <= e.horizons[i] {
				ran++
			} else {
				e.horizons[i] = -1 // skip marker
			}
		}
		if ran == 0 {
			// Every remaining event and pending delivery lies beyond its
			// shard's horizon, which is capped at until: the window is
			// exhausted.
			return nil
		}
		e.runRound()
		for _, s := range e.shards {
			if s.err != nil {
				return fmt.Errorf("shard %s: %w", s.name, s.err)
			}
		}

		// Phase 3 (barrier passed): move round sends into link queues, in
		// fixed link order so queue contents are schedule-independent.
		for _, l := range e.links {
			l.queue = append(l.queue, l.outbox...)
			l.outbox = l.outbox[:0]
		}

		done := true
		for _, s := range e.shards {
			if s.k.Now() < until {
				done = false
				break
			}
		}
		if done {
			return nil
		}
	}
}

// firstWake returns the kernel's next scheduled instant, or never.
func firstWake(k *sim.Kernel) sim.Time {
	if wake, ok := k.NextWake(); ok {
		return wake
	}
	return never
}

// inject merges the shard's pending inbound messages with delivery times
// within horizon — ordered by (deliver, source shard, link, sequence) — and
// schedules each as a process on the shard's kernel. Injection happens
// before the round runs, so the merge order is independent of worker count.
func (e *Engine) inject(s *Shard, horizon sim.Time) {
	e.merge = e.merge[:0]
	for _, l := range s.in {
		kept := l.queue[:0]
		for _, m := range l.queue {
			if m.Deliver <= horizon {
				e.merge = append(e.merge, m)
			} else {
				kept = append(kept, m)
			}
		}
		for i := len(kept); i < len(l.queue); i++ {
			l.queue[i] = Message{}
		}
		l.queue = kept
	}
	if len(e.merge) == 0 {
		return
	}
	sort.SliceStable(e.merge, func(a, b int) bool {
		ma, mb := &e.merge[a], &e.merge[b]
		if ma.Deliver != mb.Deliver {
			return ma.Deliver < mb.Deliver
		}
		if ma.src != mb.src {
			return ma.src < mb.src
		}
		if ma.link != mb.link {
			return ma.link < mb.link
		}
		return ma.seq < mb.seq
	})
	for _, m := range e.merge {
		m := m
		deliver := e.links[m.link].deliver
		wait := m.Deliver - s.k.Now()
		s.k.Spawn("shard.deliver", func(p *sim.Proc) {
			p.Sleep(wait)
			deliver(p, m.Payload)
		})
	}
}

// runRound drives every non-skipped shard to its horizon, fanning out to the
// worker budget. Worker count never affects results: shards share no state
// during a round, and all cross-shard traffic is reconciled at the barrier.
func (e *Engine) runRound() {
	runnable := make([]*Shard, 0, len(e.shards))
	for i, s := range e.shards {
		if e.horizons[i] >= 0 {
			runnable = append(runnable, s)
		}
	}
	w := e.workers
	if w > len(runnable) {
		w = len(runnable)
	}
	if w <= 1 {
		for _, s := range runnable {
			e.runShard(s)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan *Shard, len(runnable))
	for _, s := range runnable {
		next <- s
	}
	close(next)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() { //ccnic:nondet-ok barrier-synchronous fan-out; shards share no state within a round
			defer wg.Done()
			for s := range next {
				e.runShard(s)
			}
		}()
	}
	wg.Wait()
}

// runShard advances one shard to its horizon, capturing kernel errors and
// model panics for the engine to surface after the barrier.
func (e *Engine) runShard(s *Shard) {
	defer func() {
		if r := recover(); r != nil {
			s.err = fmt.Errorf("panic: %v", r)
		}
	}()
	s.err = s.k.RunUntil(e.horizons[s.id])
}
