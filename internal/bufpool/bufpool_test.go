package bufpool

import (
	"math/rand"
	"testing"

	"ccnic/internal/coherence"
	"ccnic/internal/mem"
	"ccnic/internal/platform"
	"ccnic/internal/sim"
)

// fixture runs fn with a pool built from cfg defaults overridden by mutate.
func fixture(t *testing.T, mutate func(*Config), fn func(p *sim.Proc, pl *Pool, host, nic *Port)) {
	t.Helper()
	k := sim.New()
	sys := coherence.NewSystem(k, platform.ICX())
	cfg := Config{
		Sys:       sys,
		Home:      0,
		BigCount:  32,
		BigSize:   4096,
		Shared:    true,
		Recycle:   true,
		SmallBufs: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	pl := New(cfg)
	hostA := sys.NewAgent(0, "host")
	nicA := sys.NewAgent(1, "nic")
	host := pl.Attach(hostA)
	var nic *Port
	if cfg.Shared {
		nic = pl.Attach(nicA)
	}
	k.Spawn("test", func(p *sim.Proc) { fn(p, pl, host, nic) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := pl.CheckConservation(); err != nil {
		t.Error(err)
	}
}

func TestAllocFreeRoundtrip(t *testing.T) {
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		b := host.Alloc(p, 1500)
		if b == nil {
			t.Fatal("alloc failed")
		}
		if b.Small || b.Cap != 4096 {
			t.Errorf("1500B request got Small=%v Cap=%d", b.Small, b.Cap)
		}
		if pl.Outstanding() != 1 {
			t.Errorf("outstanding = %d", pl.Outstanding())
		}
		host.Free(p, b)
		if pl.Outstanding() != 0 {
			t.Errorf("outstanding after free = %d", pl.Outstanding())
		}
	})
}

func TestSmallBufferSubdivision(t *testing.T) {
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		b := host.Alloc(p, 64)
		if b == nil || !b.Small || b.Cap != SmallSize {
			t.Fatalf("64B request got %+v, want small %dB buffer", b, SmallSize)
		}
		host.Free(p, b)
	})
}

func TestSmallBufsDisabledUsesBig(t *testing.T) {
	fixture(t, func(c *Config) { c.SmallBufs = false }, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		b := host.Alloc(p, 64)
		if b == nil || b.Small {
			t.Fatalf("with SmallBufs off, 64B request got %+v", b)
		}
		host.Free(p, b)
	})
}

func TestRecyclingReturnsMostRecentlyFreed(t *testing.T) {
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		a := host.Alloc(p, 64)
		b := host.Alloc(p, 64)
		host.Free(p, a)
		host.Free(p, b) // b freed last => LIFO top
		c := host.Alloc(p, 64)
		if c.Addr != b.Addr {
			t.Errorf("recycle returned %#x, want most-recently-freed %#x", c.Addr, b.Addr)
		}
		host.Free(p, c)
		if a.Addr == b.Addr {
			t.Error("distinct allocations shared an address")
		}
	})
}

func TestRecyclingIsCheaperThanCentral(t *testing.T) {
	var recycled, central sim.Time
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		b := host.Alloc(p, 64)
		host.Free(p, b)
		start := p.Now()
		b = host.Alloc(p, 64)
		recycled = p.Now() - start
		host.Free(p, b)
	})
	fixture(t, func(c *Config) { c.Recycle = false }, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		b := host.Alloc(p, 64)
		host.Free(p, b)
		start := p.Now()
		b = host.Alloc(p, 64)
		central = p.Now() - start
		host.Free(p, b)
	})
	if recycled >= central {
		t.Errorf("recycled alloc (%v) should be cheaper than central alloc (%v)", recycled, central)
	}
}

func TestNonSequentialFillScattersAddresses(t *testing.T) {
	adjacent := func(seq bool) int {
		var count int
		fixture(t, func(c *Config) { c.Sequential = seq; c.Recycle = false }, func(p *sim.Proc, pl *Pool, host, nic *Port) {
			var prev mem.Addr
			for i := 0; i < 16; i++ {
				b := host.Alloc(p, 64)
				if i > 0 {
					d := int64(b.Addr) - int64(prev)
					if d < 0 {
						d = -d
					}
					if d <= 256 {
						count++
					}
				}
				prev = b.Addr
			}
		})
		return count
	}
	if seqAdj := adjacent(true); seqAdj < 10 {
		t.Errorf("sequential fill: only %d adjacent pairs, expected mostly adjacent", seqAdj)
	}
	if scatAdj := adjacent(false); scatAdj > 2 {
		t.Errorf("non-sequential fill: %d adjacent pairs, want ~0", scatAdj)
	}
}

func TestNonSharedRejectsDevicePort(t *testing.T) {
	k := sim.New()
	sys := coherence.NewSystem(k, platform.ICX())
	pl := New(Config{Sys: sys, BigCount: 4, BigSize: 4096})
	nicA := sys.NewAgent(1, "nic")
	defer func() {
		if recover() == nil {
			t.Error("expected panic attaching device port to non-shared pool")
		}
	}()
	pl.Attach(nicA)
}

func TestExhaustionReturnsNil(t *testing.T) {
	fixture(t, func(c *Config) { c.BigCount = 2; c.SmallBufs = false; c.Recycle = false },
		func(p *sim.Proc, pl *Pool, host, nic *Port) {
			a := host.Alloc(p, 1500)
			b := host.Alloc(p, 1500)
			if a == nil || b == nil {
				t.Fatal("expected two successful allocs")
			}
			if c := host.Alloc(p, 1500); c != nil {
				t.Error("expected nil on exhaustion")
			}
			host.Free(p, a)
			host.Free(p, b)
		})
}

func TestAllocBurst(t *testing.T) {
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		out := make([]*Buf, 8)
		n := host.AllocBurst(p, 64, out)
		if n != 8 {
			t.Fatalf("burst = %d, want 8", n)
		}
		host.FreeBurst(p, out)
	})
}

func TestCrossSideFreeAlloc(t *testing.T) {
	// NIC frees a buffer the host allocated; NIC's next alloc recycles it
	// (the TX->RX recycling path).
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		b := host.Alloc(p, 64)
		nic.Free(p, b)
		c := nic.Alloc(p, 64)
		if c.Addr != b.Addr {
			t.Errorf("NIC alloc = %#x, want recycled %#x", c.Addr, b.Addr)
		}
		nic.Free(p, c)
	})
}

func TestDoubleFreePanics(t *testing.T) {
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		b := host.Alloc(p, 64)
		host.Free(p, b)
		defer func() {
			if recover() == nil {
				t.Error("expected double-free panic")
			}
			// The failed Free mutated nothing, so state stays consistent.
		}()
		host.Free(p, b)
	})
}

func TestBufMetadata(t *testing.T) {
	b := &Buf{Len: 100, ExtLen: 400}
	if b.TotalLen() != 500 {
		t.Errorf("TotalLen = %d", b.TotalLen())
	}
	b.Seq, b.Born = 7, 3
	b.ResetMeta()
	if b.Len != 0 || b.Seq != 0 || b.Born != 0 || b.ExtLen != 0 {
		t.Error("ResetMeta left residue")
	}
}

func TestFillOrderProperties(t *testing.T) {
	for _, n := range []int{1, 2, 7, 32, 100} {
		for _, seq := range []bool{true, false} {
			order := fillOrder(n, seq)
			if len(order) != n {
				t.Fatalf("fillOrder(%d,%v) len = %d", n, seq, len(order))
			}
			seen := make([]bool, n)
			for _, i := range order {
				if i < 0 || i >= n || seen[i] {
					t.Fatalf("fillOrder(%d,%v) not a permutation: %v", n, seq, order)
				}
				seen[i] = true
			}
		}
	}
}

// TestConservationUnderChurn hammers the pool from both sides with random
// alloc/free and verifies conservation and coherence invariants.
func TestConservationUnderChurn(t *testing.T) {
	fixture(t, nil, func(p *sim.Proc, pl *Pool, host, nic *Port) {
		rng := rand.New(rand.NewSource(11))
		var live []*Buf
		ports := []*Port{host, nic}
		for i := 0; i < 5000; i++ {
			pt := ports[rng.Intn(2)]
			if rng.Intn(2) == 0 || len(live) == 0 {
				size := 64
				if rng.Intn(3) == 0 {
					size = 1500
				}
				if b := pt.Alloc(p, size); b != nil {
					live = append(live, b)
				}
			} else {
				j := rng.Intn(len(live))
				pt.Free(p, live[j])
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			if i%1000 == 0 {
				if err := pl.CheckConservation(); err != nil {
					t.Fatalf("iteration %d: %v", i, err)
				}
			}
		}
		for _, b := range live {
			host.Free(p, b)
		}
	})
}

// TestSpillPreservesConservation regression-tests the recycle-stack spill
// path: freeing far more buffers than the stack depth must not duplicate or
// lose buffers (this once hid a slice-aliasing bug).
func TestSpillPreservesConservation(t *testing.T) {
	fixture(t, func(c *Config) { c.BigCount = 64; c.RecycleDepth = 8 },
		func(p *sim.Proc, pl *Pool, host, nic *Port) {
			var live []*Buf
			for i := 0; i < 60; i++ {
				if b := host.Alloc(p, 1500); b != nil {
					live = append(live, b)
				}
			}
			for _, b := range live {
				host.Free(p, b) // forces repeated spills
			}
			if err := pl.CheckConservation(); err != nil {
				t.Fatal(err)
			}
			// Every buffer must be allocatable again exactly once.
			seen := map[mem.Addr]bool{}
			for i := 0; i < 60; i++ {
				b := host.Alloc(p, 1500)
				if b == nil {
					t.Fatalf("alloc %d failed after spill cycle", i)
				}
				if seen[b.Addr] {
					t.Fatalf("buffer %#x handed out twice", b.Addr)
				}
				seen[b.Addr] = true
				live[i] = b
			}
			for _, b := range live {
				host.Free(p, b)
			}
		})
}

func TestShardStealing(t *testing.T) {
	// Drain the host shard entirely; its next allocation must steal from
	// the NIC-side shard rather than fail.
	fixture(t, func(c *Config) { c.BigCount = 16; c.SmallBufs = false; c.Recycle = false },
		func(p *sim.Proc, pl *Pool, host, nic *Port) {
			var live []*Buf
			for {
				b := host.Alloc(p, 1500)
				if b == nil {
					break
				}
				live = append(live, b)
			}
			if len(live) != 16 {
				t.Fatalf("allocated %d of 16 before exhaustion", len(live))
			}
			// Free half through the NIC port: they land in its shard.
			nic.FreeBurst(p, live[:8])
			live = live[8:]
			// Host allocations must now steal from the NIC shard.
			for i := 0; i < 8; i++ {
				b := host.Alloc(p, 1500)
				if b == nil {
					t.Fatalf("steal failed at %d", i)
				}
				live = append(live, b)
			}
			host.FreeBurst(p, live)
		})
}

func TestFIFOCyclesFootprint(t *testing.T) {
	// Without recycling, the pool is a FIFO ring: consecutive allocations
	// walk the whole buffer set instead of reusing the hottest one.
	fixture(t, func(c *Config) { c.BigCount = 8; c.SmallBufs = false; c.Recycle = false; c.Sequential = true },
		func(p *sim.Proc, pl *Pool, host, nic *Port) {
			seen := map[mem.Addr]bool{}
			for i := 0; i < 8; i++ {
				b := host.Alloc(p, 1500)
				seen[b.Addr] = true
				host.Free(p, b)
			}
			if len(seen) < 4 {
				t.Errorf("FIFO pool reused aggressively: only %d distinct buffers in 8 allocs", len(seen))
			}
		})
	// With recycling, the same loop reuses one hot buffer.
	fixture(t, func(c *Config) { c.BigCount = 8; c.SmallBufs = false; c.Recycle = true },
		func(p *sim.Proc, pl *Pool, host, nic *Port) {
			seen := map[mem.Addr]bool{}
			for i := 0; i < 8; i++ {
				b := host.Alloc(p, 1500)
				seen[b.Addr] = true
				host.Free(p, b)
			}
			if len(seen) != 1 {
				t.Errorf("LIFO recycling should reuse one buffer, saw %d", len(seen))
			}
		})
}
