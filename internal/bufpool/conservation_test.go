package bufpool_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ccnic/internal/bufpool"
	"ccnic/internal/check"
	"ccnic/internal/coherence"
	"ccnic/internal/platform"
	"ccnic/internal/sim"
)

// drainQueue frees every buffer queued for port w, popping one at a time
// because Free yields and other workers append to the queue mid-yield.
func drainQueue(p *sim.Proc, pt *bufpool.Port, pending [][]*bufpool.Buf, w int) {
	for len(pending[w]) > 0 {
		b := pending[w][len(pending[w])-1]
		pending[w] = pending[w][:len(pending[w])-1]
		pt.Free(p, b)
	}
}

// TestConcurrentConservation hammers the pool from concurrent host and NIC
// ports across the paper's management modes — recycled LIFO, FIFO (no
// recycling), small-buffer subdivision, and host-only management — with
// randomized alloc/free bursts and cross-port frees (host allocates, NIC
// frees, and vice versa, as TX/RX buffer flows do). The invariant engine
// validates counter conservation after every pool mutation; at drain the
// full duplicate scan must reconcile with zero outstanding buffers.
func TestConcurrentConservation(t *testing.T) {
	modes := []struct {
		name string
		cfg  bufpool.Config
	}{
		{"recycled", bufpool.Config{Shared: true, Recycle: true, RecycleDepth: 8}},
		{"fifo", bufpool.Config{Shared: true}},
		{"smallbufs", bufpool.Config{Shared: true, Recycle: true, SmallBufs: true, RecycleDepth: 8}},
		{"host-only", bufpool.Config{}},
	}
	for _, mode := range modes {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mode.name, seed), func(t *testing.T) {
				k := sim.New()
				sys := coherence.NewSystem(k, platform.ICX())
				e := check.Attach(sys)
				e.SetFullEvery(256)

				cfg := mode.cfg
				cfg.Sys = sys
				cfg.BigCount = 64
				cfg.BigSize = 4096
				pool := bufpool.New(cfg)

				// Host-only pools accept only host-socket ports; shared
				// pools get a NIC port too, exercising remote management.
				agents := []*coherence.Agent{sys.NewAgent(0, "h0"), sys.NewAgent(0, "h1")}
				if cfg.Shared {
					agents = append(agents, sys.NewAgent(1, "n0"), sys.NewAgent(1, "n1"))
				}
				ports := make([]*bufpool.Port, len(agents))
				for i, a := range agents {
					ports[i] = pool.Attach(a)
				}

				// Each worker allocates bursts and hands them to a
				// randomly chosen port's free queue (cross-port flow).
				pending := make([][]*bufpool.Buf, len(ports))
				for w := range ports {
					w := w
					rng := rand.New(rand.NewSource(seed*100 + int64(w)))
					k.Spawn(fmt.Sprintf("worker%d", w), func(p *sim.Proc) {
						// Deadline-bounded: with few buffers and many
						// workers, the tail of the run can starve a
						// worker whose peers already exited holding
						// its buffers in their free queues.
						deadline := p.Now() + 200*sim.Microsecond
						allocated := 0
						for allocated < 400 && p.Now() < deadline {
							// Drain anything other workers freed to us.
							// Pop one at a time: Free yields, and other
							// workers append to this queue mid-yield.
							drainQueue(p, ports[w], pending, w)

							n := 1 + rng.Intn(6)
							size := 64
							if cfg.SmallBufs && rng.Intn(2) == 0 {
								size = 1024
							}
							bufs := make([]*bufpool.Buf, n)
							got := ports[w].AllocBurst(p, size, bufs)
							allocated += got
							for _, b := range bufs[:got] {
								dst := rng.Intn(len(ports))
								pending[dst] = append(pending[dst], b)
							}
							p.Sleep(sim.Time(10+rng.Intn(200)) * sim.Nanosecond)
						}
						// Final drain of our own queue.
						drainQueue(p, ports[w], pending, w)
					})
				}
				if err := k.Run(); err != nil {
					t.Fatal(err)
				}
				// Reconcile at drain: stragglers routed to workers that
				// already exited are freed here, then nothing may be
				// outstanding or duplicated.
				k.Spawn("drain", func(p *sim.Proc) {
					for w := range pending {
						drainQueue(p, ports[w], pending, w)
					}
				})
				if err := k.Run(); err != nil {
					t.Fatal(err)
				}
				if pool.Outstanding() != 0 {
					t.Errorf("%d buffers still allocated after drain", pool.Outstanding())
				}
				if err := pool.CheckConservation(); err != nil {
					t.Error(err)
				}
				if err := pool.CheckCounts(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}
