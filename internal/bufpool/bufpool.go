// Package bufpool implements packet buffer management for the simulated NIC
// interfaces, including every CC-NIC buffer optimization from §3.3-§3.4 of
// the paper — each individually switchable so the Fig 15 ablation can remove
// them one at a time:
//
//   - a shared, coherently-accessed central pool that both host and NIC
//     allocate from and free to (vs. host-only management),
//   - per-core recycling stacks that reuse the most recently freed TX
//     buffers as RX buffers and vice versa, keeping buffer memory in the
//     writer's cache,
//   - small-buffer subdivision (an MTU-sized buffer carved into 128B
//     buffers for small packets), and
//   - non-sequential pool fill, so consecutive allocations do not return
//     adjacent addresses (defeating harmful remote prefetch).
//
// All buffer memory is homed on the host socket, as in the paper.
package bufpool

import (
	"fmt"

	"ccnic/internal/coherence"
	"ccnic/internal/mem"
	"ccnic/internal/sim"
)

// SmallSize is the subdivided small-buffer size (the paper's example: a 4KB
// buffer split into 32x128B buffers).
const SmallSize = 128

// stackOpCost is the CPU cost of one recycle-stack push or pop. The stack's
// hot lines live in the owning core's L1, so this is instruction cost, not
// a coherence event.
const stackOpCost = 2 * sim.Nanosecond

// bufState tracks allocation state to enforce pool invariants.
type bufState uint8

const (
	stateFree bufState = iota
	stateAllocated
)

// Buf is a packet buffer. Addr/Cap describe the simulated memory; the
// remaining fields carry packet metadata out-of-band (the simulation does
// not store bytes behind addresses).
type Buf struct {
	Addr  mem.Addr
	Cap   int
	Small bool

	// Len is the current payload length.
	Len int
	// Seq and Born identify and timestamp the packet for latency
	// measurement.
	Seq  uint64
	Born sim.Time
	// ExtAddr/ExtLen describe an optional second, zero-copy segment
	// (multi-segment TX, used by the key-value store's get responses).
	ExtAddr mem.Addr
	ExtLen  int

	state bufState
	pool  *Pool
}

// TotalLen returns the full packet length across segments.
func (b *Buf) TotalLen() int { return b.Len + b.ExtLen }

// ResetMeta clears per-packet metadata before reuse.
//
//ccnic:noalloc
func (b *Buf) ResetMeta() {
	b.Len, b.Seq, b.Born, b.ExtAddr, b.ExtLen = 0, 0, 0, 0, 0
}

// Config selects the pool's feature set.
type Config struct {
	Sys *coherence.System

	// Home is the socket buffer memory is homed on (0 = host).
	Home int
	// BigCount MTU-size buffers of BigSize bytes each.
	BigCount int
	BigSize  int

	// Shared lets NIC-side ports allocate and free (CC-NIC §3.4).
	Shared bool
	// Recycle enables per-port recycling stacks (§3.3).
	Recycle bool
	// SmallBufs enables small-buffer subdivision (§3.3).
	SmallBufs bool
	// Sequential fills freelists in address order (the harmful layout);
	// false applies CC-NIC's non-sequential fill.
	Sequential bool

	// RecycleDepth bounds each port's recycling stack (default 64).
	RecycleDepth int
	// RefillBatch is the central-pool transfer batch size (default 32).
	RefillBatch int
}

// Pool is the packet-buffer pool. Its free space is sharded per attached
// port (the standard DPDK deployment: a mempool partition per queue), with
// work stealing between shards when one runs dry. Each shard's lock/head
// line and entry array live in coherent memory near its owner, so pool
// traffic is charged to the right caches and link without funneling every
// queue through one contended line.
type Pool struct {
	cfg Config
	sys *coherence.System

	// seed holds buffers not yet adopted by any shard; the first shards
	// to run dry claim from it (cheap, models initial pool fill).
	seedBig   []*Buf
	seedSmall []*Buf

	// Accounting for invariant checks.
	totalBufs     int // bigs not carved + smalls carved
	allocatedBufs int

	ports []*Port
}

// New builds a pool and its central freelists.
func New(cfg Config) *Pool {
	if cfg.Sys == nil {
		panic("bufpool: Config.Sys is required")
	}
	if cfg.BigCount <= 0 || cfg.BigSize <= 0 {
		panic("bufpool: BigCount and BigSize must be positive")
	}
	if cfg.BigSize%SmallSize != 0 {
		panic("bufpool: BigSize must be a multiple of SmallSize")
	}
	if cfg.RecycleDepth == 0 {
		cfg.RecycleDepth = 64
	}
	if cfg.RefillBatch == 0 {
		cfg.RefillBatch = 32
	}
	pl := &Pool{cfg: cfg, sys: cfg.Sys}
	sp := cfg.Sys.Space()
	base := sp.Alloc(cfg.Home, cfg.BigCount*cfg.BigSize, mem.Addr(cfg.BigSize))
	order := fillOrder(cfg.BigCount, cfg.Sequential)
	// One backing array for the whole seed population: pool construction
	// happens per simulation, and per-Buf allocations dominated the
	// allocator profile.
	bufs := make([]Buf, len(order))
	pl.seedBig = make([]*Buf, 0, len(order))
	for k, i := range order {
		b := &bufs[k]
		b.Addr = base + mem.Addr(i*cfg.BigSize)
		b.Cap = cfg.BigSize
		b.pool = pl
		pl.seedBig = append(pl.seedBig, b)
	}
	pl.totalBufs = cfg.BigCount
	return pl
}

// fillOrder returns buffer indexes in allocation order: ascending when
// sequential, otherwise strided so consecutive allocations are far apart.
func fillOrder(n int, sequential bool) []int {
	order := make([]int, 0, n)
	if sequential {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	// Stride by a co-prime step that scatters neighbors.
	step := n/7 + 1
	for gcd(step, n) != 1 {
		step++
	}
	for i, j := 0, 0; i < n; i, j = i+1, (j+step)%n {
		order = append(order, j)
	}
	return order
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Shared reports whether NIC-side ports may manage buffers.
func (pl *Pool) Shared() bool { return pl.cfg.Shared }

// Outstanding returns the number of currently allocated buffers.
func (pl *Pool) Outstanding() int { return pl.allocatedBufs }

// notify reports a completed pool mutation to the system's validation probe.
//
//ccnic:noalloc
func (pl *Pool) notify() {
	if pr := pl.sys.Probe(); pr != nil {
		pr.ObjectEvent(pl)
	}
}

// CheckDesc implements coherence.Checkable.
func (pl *Pool) CheckDesc() string {
	return fmt.Sprintf("bufpool home=%d bigs=%d shared=%v recycle=%v",
		pl.cfg.Home, pl.cfg.BigCount, pl.cfg.Shared, pl.cfg.Recycle)
}

// CheckCounts is the cheap (O(ports)) conservation check: list lengths plus
// the allocated counter must equal the total, with no negative counters. The
// full duplicate scan lives in CheckConservation.
func (pl *Pool) CheckCounts() error {
	if pl.allocatedBufs < 0 {
		return fmt.Errorf("bufpool: negative allocated count %d", pl.allocatedBufs)
	}
	free := len(pl.seedBig) + len(pl.seedSmall)
	for _, pt := range pl.ports {
		free += len(pt.recycleBig) + len(pt.recycleSmall)
		free += len(pt.shardBig) + len(pt.shardSmall)
	}
	if free+pl.allocatedBufs != pl.totalBufs {
		return fmt.Errorf("bufpool: %d free + %d allocated != %d total",
			free, pl.allocatedBufs, pl.totalBufs)
	}
	return nil
}

// CheckInvariants implements coherence.Checkable with the cheap check; the
// invariant engine runs CheckConservation on its throttled full passes.
func (pl *Pool) CheckInvariants() error { return pl.CheckCounts() }

// carveSmall splits one big buffer from the shard into small buffers in the
// configured fill order.
func (pt *Port) carveSmall() bool {
	pl := pt.pool
	if len(pt.shardBig) == 0 && len(pl.seedBig) > 0 {
		pt.claimSeed()
	}
	if len(pt.shardBig) == 0 {
		return false
	}
	big := pt.shardBig[len(pt.shardBig)-1]
	pt.shardBig = pt.shardBig[:len(pt.shardBig)-1]
	n := big.Cap / SmallSize
	order := fillOrder(n, pl.cfg.Sequential)
	for _, i := range order {
		pt.shardSmall = append(pt.shardSmall, &Buf{
			Addr:  big.Addr + mem.Addr(i*SmallSize),
			Cap:   SmallSize,
			Small: true,
			pool:  pl,
		})
	}
	pl.totalBufs += n - 1 // one big became n smalls
	return true
}

// entryLines returns the shard entry lines touched by moving count pointers
// at the given stack depth (8 pointers per line).
func (pt *Port) entryLines(depth, count int) []mem.Addr {
	var lines []mem.Addr
	last := mem.Addr(0)
	for i := depth; i < depth+count; i++ {
		l := mem.LineOf(pt.entriesBase + mem.Addr(i*8))
		if l != last {
			lines = append(lines, l)
			last = l
		}
	}
	return lines
}

// Port is a per-core handle on the pool: the core's shard of the free
// space plus its recycling stacks. Create one per driver/NIC thread with
// Attach.
type Port struct {
	pool  *Pool
	agent *coherence.Agent

	// The shard: this port's partition of the pool's free space. With
	// recycling enabled the shard is a LIFO stack (hot reuse); without
	// it, it behaves as a FIFO ring, cycling the full buffer footprint
	// as DPDK's uncached mempool ring does — the cache-footprint cost
	// the paper's recycling ablation measures.
	shardBig    []*Buf
	shardSmall  []*Buf
	headBig     int // FIFO cursors (non-recycling mode)
	headSmall   int
	lockLine    mem.Addr
	entriesBase mem.Addr

	recycleBig   []*Buf
	recycleSmall []*Buf
	stackLine    mem.Addr // the recycle stack's hot line (local memory)
}

// Attach creates a Port for the given agent. NIC-socket agents may only
// attach to shared pools.
func (pl *Pool) Attach(a *coherence.Agent) *Port {
	if a.Socket() != pl.cfg.Home && !pl.cfg.Shared {
		panic("bufpool: non-shared pool cannot be attached from the device side")
	}
	sp := pl.sys.Space()
	pt := &Port{
		pool:        pl,
		agent:       a,
		lockLine:    sp.AllocLines(a.Socket(), 1),
		entriesBase: sp.Alloc(a.Socket(), 8*pl.cfg.BigCount*(pl.cfg.BigSize/SmallSize), 0),
		stackLine:   sp.AllocLines(a.Socket(), 1),
	}
	pl.ports = append(pl.ports, pt)
	return pt
}

// claimSeed adopts a slice of the unowned seed buffers into this shard.
func (pt *Port) claimSeed() {
	pl := pt.pool
	n := len(pl.seedBig) / max(1, len(pl.ports))
	if n == 0 {
		n = len(pl.seedBig)
	}
	pt.shardBig = append(pt.shardBig, pl.seedBig[len(pl.seedBig)-n:]...)
	pl.seedBig = pl.seedBig[:len(pl.seedBig)-n]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Alloc allocates one buffer large enough for size payload bytes, charging
// the calling process for the memory operations involved. It returns nil if
// the pool is exhausted. The caller owns the result: ownlint requires it be
// released or transferred exactly once on every path.
//
//ccnic:noalloc
//ccnic:owns
func (pt *Port) Alloc(p *sim.Proc, size int) *Buf {
	pl := pt.pool
	small := pl.cfg.SmallBufs && size <= SmallSize
	// Fast path: the recycling stack.
	if pl.cfg.Recycle {
		stack := &pt.recycleBig
		if small {
			stack = &pt.recycleSmall
		}
		if n := len(*stack); n > 0 {
			//ccnic:atomic pop-to-take: the popped buffer must be owned before any yield
			b := (*stack)[n-1]
			*stack = (*stack)[:n-1]
			b = pl.take(b)
			//ccnic:atomic-end the Exec charge below yields; the pool is consistent again
			pt.agent.Exec(p, stackOpCost) // L1-resident stack pop
			return b
		}
	}
	// Central pool refill/alloc.
	return pt.centralAlloc(p, small) //ccnic:alloc-ok central refill is the audited slow path
}

// centralAlloc pops one buffer (plus a refill batch when recycling) from
// the port's shard, claiming seed buffers or stealing from the richest
// other shard when dry.
//
//ccnic:owns
func (pt *Port) centralAlloc(p *sim.Proc, small bool) *Buf {
	pl := pt.pool
	list := &pt.shardBig
	if small {
		if len(pt.shardSmall) == 0 {
			pt.carveSmall()
		}
		if len(pt.shardSmall) == 0 && !pt.steal(p, true) {
			return nil
		}
		list = &pt.shardSmall
	} else {
		if len(pt.shardBig) == 0 && len(pl.seedBig) > 0 {
			pt.claimSeed()
		}
		if len(pt.shardBig) == 0 && !pt.steal(p, false) {
			return nil
		}
	}
	if len(*list) == 0 {
		return nil
	}
	batch := 1
	if pl.cfg.Recycle {
		batch = pl.cfg.RefillBatch
	}
	if batch > len(*list) {
		batch = len(*list)
	}
	// Mutate the shared structure first: agent operations below yield to
	// other processes, and the pool must appear atomic to them (the real
	// structure is updated with a CAS; the charges below model its cost).
	//ccnic:atomic central-pool pop: lists and ownership settle before the charges yield
	depth := len(*list) - batch
	var out *Buf
	head := &pt.headBig
	if small {
		head = &pt.headSmall
	}
	for i := 0; i < batch; i++ {
		var b *Buf
		if pl.cfg.Recycle {
			b = (*list)[len(*list)-1]
			*list = (*list)[:len(*list)-1]
		} else {
			// FIFO: take from the front, compacting lazily.
			if *head >= len(*list) {
				*head = 0
			}
			b = (*list)[*head]
			copy((*list)[*head:], (*list)[*head+1:])
			*list = (*list)[:len(*list)-1]
		}
		if i == 0 {
			out = b
		} else if small {
			pt.recycleSmall = append(pt.recycleSmall, b)
		} else {
			pt.recycleBig = append(pt.recycleBig, b)
		}
	}
	// Extra refill entries beyond the first stay free-state on the
	// recycle stack; only the returned buffer is marked allocated.
	out = pl.take(out)
	//ccnic:atomic-end
	pt.agent.Write(p, pt.lockLine, 8)
	pt.agent.GatherRead(p, pt.entryLines(depth, batch))
	return out
}

// steal moves half of the richest other shard's buffers (of the requested
// class) into this shard, charging the victim-shard accesses. It reports
// whether anything was obtained.
func (pt *Port) steal(p *sim.Proc, small bool) bool {
	var victim *Port
	best := 0
	for _, o := range pt.pool.ports {
		if o == pt {
			continue
		}
		n := len(o.shardBig)
		if small {
			n = len(o.shardSmall)
		}
		if n > best {
			best = n
			victim = o
		}
	}
	if victim == nil {
		// Last resort for small requests: carve from any big source.
		if small {
			return pt.carveSmall()
		}
		return false
	}
	src := &victim.shardBig
	dst := &pt.shardBig
	if small {
		src = &victim.shardSmall
		dst = &pt.shardSmall
	}
	n := (best + 1) / 2
	//ccnic:atomic steal: both shards settle before the victim-access charges yield
	*dst = append(*dst, (*src)[len(*src)-n:]...)
	*src = (*src)[:len(*src)-n]
	//ccnic:atomic-end
	pt.agent.Write(p, victim.lockLine, 8)
	pt.agent.GatherRead(p, victim.entryLines(len(*src), n))
	return true
}

// take transitions a buffer to allocated, enforcing single-allocation: it
// consumes the raw popped buffer and hands back the same buffer as an owned
// allocation.
//
//ccnic:noalloc
//ccnic:transfer
//ccnic:owns
func (pl *Pool) take(b *Buf) *Buf {
	if b.state != stateFree {
		panic(fmt.Sprintf("bufpool: double allocation of buffer %#x", b.Addr))
	}
	b.state = stateAllocated
	b.ResetMeta()
	pl.allocatedBufs++
	pl.notify()
	return b
}

// AllocBurst allocates up to len(out) buffers for the given payload size,
// returning how many were obtained.
func (pt *Port) AllocBurst(p *sim.Proc, size int, out []*Buf) int {
	for i := range out {
		b := pt.Alloc(p, size)
		if b == nil {
			return i
		}
		out[i] = b
	}
	return len(out)
}

// Free returns a buffer to the port's recycling stack (spilling half the
// stack to the central pool when full) or directly to the central pool. It
// consumes the buffer: the caller's ownership ends here.
//
//ccnic:noalloc
//ccnic:transfer
func (pt *Port) Free(p *sim.Proc, b *Buf) {
	pl := pt.pool
	if b.pool != pl {
		panic("bufpool: buffer freed to wrong pool")
	}
	if b.state != stateAllocated {
		panic(fmt.Sprintf("bufpool: double free of buffer %#x", b.Addr))
	}
	//ccnic:atomic release-to-push: the freed buffer must be listed before any yield
	b.state = stateFree
	pl.allocatedBufs--

	if pl.cfg.Recycle {
		stack := &pt.recycleBig
		if b.Small {
			stack = &pt.recycleSmall
		}
		*stack = append(*stack, b)
		//ccnic:atomic-end the Exec charge below yields; the pool is consistent again
		pt.agent.Exec(p, stackOpCost) // L1-resident stack push
		if len(*stack) > pl.cfg.RecycleDepth {
			pt.spill(p, stack) //ccnic:alloc-ok bounded spill is the audited slow path
		}
		pl.notify()
		return
	}
	pt.centralFree(p, []*Buf{b}) //ccnic:alloc-ok non-recycling central free is the audited slow path
	pl.notify()
}

// FreeBurst frees a batch of buffers, consuming them.
//
//ccnic:transfer
func (pt *Port) FreeBurst(p *sim.Proc, bufs []*Buf) {
	for _, b := range bufs {
		pt.Free(p, b)
	}
}

// spill moves the oldest half of the recycle stack back to the central pool.
func (pt *Port) spill(p *sim.Proc, stack *[]*Buf) {
	n := len(*stack) / 2
	moved := append([]*Buf(nil), (*stack)[:n]...)
	*stack = append((*stack)[:0], (*stack)[n:]...)
	pt.centralFree(p, moved)
}

// centralFree pushes buffers onto the port's shard, charging the shard
// structure accesses.
func (pt *Port) centralFree(p *sim.Proc, bufs []*Buf) {
	// Mutate first (see centralAlloc), then charge.
	//ccnic:atomic central-pool push: lists settle before the charges yield
	depthBig, depthSmall := len(pt.shardBig), len(pt.shardSmall)
	nBig, nSmall := 0, 0
	for _, b := range bufs {
		if b.Small {
			pt.shardSmall = append(pt.shardSmall, b)
			nSmall++
		} else {
			pt.shardBig = append(pt.shardBig, b)
			nBig++
		}
	}
	//ccnic:atomic-end
	pt.agent.Write(p, pt.lockLine, 8)
	if nBig > 0 {
		pt.agent.ScatterWrite(p, pt.entryLines(depthBig, nBig))
	}
	if nSmall > 0 {
		pt.agent.ScatterWrite(p, pt.entryLines(depthSmall, nSmall))
	}
}

// CheckConservation verifies that no buffer was leaked or duplicated:
// free lists + recycle stacks + allocated count must equal the total.
func (pl *Pool) CheckConservation() error {
	free := len(pl.seedBig) + len(pl.seedSmall)
	for _, pt := range pl.ports {
		free += len(pt.recycleBig) + len(pt.recycleSmall)
		free += len(pt.shardBig) + len(pt.shardSmall)
	}
	if free+pl.allocatedBufs != pl.totalBufs {
		return fmt.Errorf("bufpool: %d free + %d allocated != %d total",
			free, pl.allocatedBufs, pl.totalBufs)
	}
	seen := make(map[mem.Addr]bool)
	check := func(bufs []*Buf) error {
		for _, b := range bufs {
			if b.state != stateFree {
				return fmt.Errorf("bufpool: buffer %#x on a free list but not free", b.Addr)
			}
			if seen[b.Addr] {
				return fmt.Errorf("bufpool: buffer %#x on two free lists", b.Addr)
			}
			seen[b.Addr] = true
		}
		return nil
	}
	if err := check(pl.seedBig); err != nil {
		return err
	}
	if err := check(pl.seedSmall); err != nil {
		return err
	}
	for _, pt := range pl.ports {
		if err := check(pt.recycleBig); err != nil {
			return err
		}
		if err := check(pt.recycleSmall); err != nil {
			return err
		}
		if err := check(pt.shardBig); err != nil {
			return err
		}
		if err := check(pt.shardSmall); err != nil {
			return err
		}
	}
	return nil
}
