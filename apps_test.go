package ccnic

import (
	"testing"

	"ccnic/internal/sim"
)

func TestRunForwardPublicAPI(t *testing.T) {
	tb := NewTestbed(Config{Platform: "ICX", Interface: CCNIC, Queues: 2, HostPrefetch: true})
	res := tb.RunForward(LoopbackOptions{
		PktSize: 1536,
		Warmup:  20 * sim.Microsecond,
		Measure: 60 * sim.Microsecond,
	}, 2e6)
	if res.PPS < 1e6 {
		t.Fatalf("forwarded %.0f pps", res.PPS)
	}
	if res.Gbps <= 0 {
		t.Error("no forwarded bytes")
	}
}

func TestRunKVStorePublicAPI(t *testing.T) {
	tb := NewTestbed(Config{
		Platform: "ICX", Interface: OverlayCCNIC, Queues: 2,
		OverlayThreads: 4, HostPrefetch: true,
	})
	res := tb.RunKVStore(KVOptions{
		Dist:         "ads",
		Keys:         10_000,
		RatePerQueue: 2e6,
		Seed:         5,
		Warmup:       25 * sim.Microsecond,
		Measure:      60 * sim.Microsecond,
	})
	if res.OpsPerSec <= 0 {
		t.Fatal("no KV throughput")
	}
	if res.Gets == 0 || res.Sets == 0 {
		t.Errorf("op mix missing: %d gets %d sets", res.Gets, res.Sets)
	}
}

func TestRunKVStoreFixedAndGeo(t *testing.T) {
	for _, opt := range []KVOptions{
		{Dist: "geo", Keys: 5_000, RatePerQueue: 1e6, Seed: 2,
			Warmup: 20 * sim.Microsecond, Measure: 40 * sim.Microsecond},
		{FixedSize: 512, Keys: 5_000, RatePerQueue: 1e6, Seed: 2,
			Warmup: 20 * sim.Microsecond, Measure: 40 * sim.Microsecond},
	} {
		tb := NewTestbed(Config{Platform: "ICX", Interface: CX6, Queues: 1, HostPrefetch: true})
		res := tb.RunKVStore(opt)
		if res.OpsPerSec <= 0 {
			t.Fatalf("dist %q fixed %d: no throughput", opt.Dist, opt.FixedSize)
		}
	}
}

func TestRunRPCPublicAPI(t *testing.T) {
	tb := NewTestbed(Config{Platform: "ICX", Interface: CX6, Queues: 2, HostPrefetch: true})
	res := tb.RunRPC(RPCOptions{
		RatePerQueue: 2e6,
		Warmup:       20 * sim.Microsecond,
		Measure:      60 * sim.Microsecond,
	})
	if res.OpsPerSec < 1e6 {
		t.Fatalf("echo throughput %.2f Mops", res.Mops())
	}
}

func TestPlatformAndConfigHelpers(t *testing.T) {
	if Platform("SPR") == nil || Platform("CXL") == nil || Platform("nope") != nil {
		t.Error("Platform lookup wrong")
	}
	u := NewUPIConfig()
	if !u.InlineSignal || !u.NICBufMgmt {
		t.Error("NewUPIConfig should be the optimized point")
	}
	un := NewUnoptUPIConfig()
	if un.InlineSignal || un.NICBufMgmt {
		t.Error("NewUnoptUPIConfig should be the baseline point")
	}
	tb := NewTestbed(Config{Platform: "ICX", Interface: CCNIC, Queues: 1})
	extra := tb.Agents(1, 3, "worker")
	if len(extra) != 3 || extra[0].Socket() != 1 {
		t.Error("Agents helper wrong")
	}
}
