module ccnic

go 1.23

toolchain go1.24.0
