module ccnic

go 1.22
