// Pingpong: exercise the coherence substrate directly, reproducing the two
// microbenchmark observations CC-NIC's metadata design is built on (§3.2):
// writer-homed memory is the fastest separate-line layout, and co-locating
// both directions of a producer-consumer exchange on one cache line roughly
// halves the roundtrip.
package main

import (
	"fmt"

	"ccnic/internal/coherence"
	"ccnic/internal/mem"
	"ccnic/internal/platform"
	"ccnic/internal/sim"
)

// roundtrips runs n pingpong rounds between a socket-0 writer and a
// socket-1 echoer over the given lines, returning the mean roundtrip.
func roundtrips(plat *platform.Platform, colocated bool, n int) sim.Time {
	k := sim.New()
	sys := coherence.NewSystem(k, plat)
	a := sys.NewAgent(0, "writer")
	b := sys.NewAgent(1, "echoer")

	lineAB := sys.Space().AllocLines(0, 1)
	lineBA := lineAB
	if !colocated {
		lineBA = sys.Space().AllocLines(1, 1) // writer-homed (the "Wr" case)
	}

	type reg struct {
		val int
		vis sim.Time
	}
	var ab, ba reg
	var total sim.Time

	k.Spawn("writer", func(p *sim.Proc) {
		for i := 1; i <= n; i++ {
			start := p.Now()
			vis := a.WriteAsync(p, lineAB, 8)
			ab.vis, ab.val = vis, i
			for {
				a.Poll(p, lineBA, 8)
				if ba.val == i && p.Now() >= ba.vis {
					break
				}
				p.Sleep(plat.PollGap)
			}
			total += p.Now() - start
		}
	})
	k.Spawn("echoer", func(p *sim.Proc) {
		for i := 1; i <= n; i++ {
			for {
				b.Poll(p, lineAB, 8)
				if ab.val == i && p.Now() >= ab.vis {
					break
				}
				p.Sleep(plat.PollGap)
			}
			vis := b.WriteAsync(p, lineBA, 8)
			ba.vis, ba.val = vis, i
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return total / sim.Time(n)
}

func main() {
	for _, name := range []string{"ICX", "SPR"} {
		plat := platform.ByName(name)
		sep := roundtrips(plat, false, 500)
		co := roundtrips(plat, true, 500)
		fmt.Printf("%s cross-UPI pingpong (500 rounds):\n", plat.Name)
		fmt.Printf("  separate lines (writer-homed): %v per roundtrip\n", sep)
		fmt.Printf("  co-located single line:        %v per roundtrip (%.2fx faster)\n\n",
			co, float64(sep)/float64(co))
	}

	// The same effect visible through raw access latencies (Fig 7).
	fmt.Println("Access latencies on ICX (see also cmd/mlc):")
	k := sim.New()
	sys := coherence.NewSystem(k, platform.ICX())
	k.Spawn("lat", func(p *sim.Proc) {
		host := sys.NewAgent(0, "host")
		nic := sys.NewAgent(1, "nic")
		dirty := sys.Space().AllocLines(1, 1)
		nic.Write(p, dirty, 64)
		fmt.Printf("  remote dirty line (cache-to-cache): %v\n", host.Read(p, dirty, 64))
		cold := sys.Space().AllocLines(1, 1)
		fmt.Printf("  remote DRAM:                        %v\n", host.Read(p, cold, 64))
		_ = mem.LineSize
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
}
