// Forward: the paper's §6 network-function scenario — a header-only
// middlebox. Packets arrive from the wire, the host inspects one cache line
// per packet, and retransmits the same buffer. Over the coherent interface
// the untouched payload stays in the NIC-side cache; over PCIe the full
// payload is DMA'd to host memory and read back out. The interconnect
// traffic per forwarded packet makes the difference visible.
package main

import (
	"fmt"

	"ccnic/internal/coherence"
	"ccnic/internal/device"
	"ccnic/internal/loopback"
	"ccnic/internal/platform"
	"ccnic/internal/sim"
)

func forwardUPI(pktSize int) (mpps, bytesPerPkt float64) {
	k := sim.New()
	sys := coherence.NewSystem(k, platform.ICX())
	sys.SetPrefetch(0, true)
	host := sys.NewAgent(0, "fwd")
	nic := sys.NewAgent(1, "nic")
	dev := device.NewUPI("ccnic", sys, device.CCNICConfig(),
		[]*coherence.Agent{host}, []*coherence.Agent{nic})
	res := loopback.RunForward(loopback.Config{
		Sys: sys, Dev: dev, Hosts: []*coherence.Agent{host},
		PktSize: pktSize,
		Warmup:  30 * sim.Microsecond, Measure: 100 * sim.Microsecond,
	}, 3e6)
	st := sys.Link().Stats()
	pkts := res.PPS * (130 * sim.Microsecond).Seconds()
	return res.Mpps(), float64(st.WireBytes[0]+st.WireBytes[1]) / pkts
}

func forwardPCIe(pktSize int) (mpps, bytesPerPkt float64) {
	k := sim.New()
	sys := coherence.NewSystem(k, platform.ICX())
	sys.SetPrefetch(0, true)
	host := sys.NewAgent(0, "fwd")
	dev := device.NewPCIeNIC(sys, platform.E810(), []*coherence.Agent{host})
	res := loopback.RunForward(loopback.Config{
		Sys: sys, Dev: dev, Hosts: []*coherence.Agent{host},
		PktSize: pktSize,
		Warmup:  30 * sim.Microsecond, Measure: 100 * sim.Microsecond,
	}, 3e6)
	st := dev.Endpoint().Stats()
	pkts := res.PPS * (130 * sim.Microsecond).Seconds()
	return res.Mpps(), float64(st.DMABytes[0]+st.DMABytes[1]) / pkts
}

func main() {
	fmt.Println("Header-only forwarding: interconnect bytes per packet")
	fmt.Printf("%-10s %-22s %-22s\n", "pkt size", "CC-NIC (UPI wire B)", "E810 (PCIe DMA B)")
	for _, size := range []int{256, 1536, 4096} {
		_, cc := forwardUPI(size)
		_, pe := forwardPCIe(size)
		fmt.Printf("%-10d %-22.0f %-22.0f\n", size, cc, pe)
	}
	fmt.Println("\nOn the coherent path, per-packet interconnect traffic stays nearly")
	fmt.Println("flat as payloads grow: the NIC retains payload lines in its cache")
	fmt.Println("while the host touches only headers. PCIe moves every payload byte")
	fmt.Println("across the bus twice.")
}
