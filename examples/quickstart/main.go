// Quickstart: assemble a CC-NIC testbed, push a burst of packets through
// the Fig 5-style API, and print per-packet loopback latencies.
package main

import (
	"fmt"

	"ccnic"
	"ccnic/internal/sim"
)

func main() {
	// A dual-socket Ice Lake machine with socket 1 acting as the CC-NIC.
	tb := ccnic.NewTestbed(ccnic.Config{
		Platform:     "ICX",
		Interface:    ccnic.CCNIC,
		Queues:       1,
		HostPrefetch: true,
	})
	tb.Dev.Start()

	q := tb.Dev.Queue(0)
	host := tb.Hosts[0]

	tb.Kernel.Spawn("app", func(p *sim.Proc) {
		const pkts = 8
		// Allocate TX buffers (ccnic_buf_alloc) and write payloads.
		bufs := make([]*ccnic.Buf, pkts)
		if n := q.Port().AllocBurst(p, 64, bufs); n != pkts {
			panic("buffer pool exhausted")
		}
		for i, b := range bufs {
			b.Len = 64
			b.Seq = uint64(i + 1)
			b.Born = p.Now()
			host.StreamWrite(p, b.Addr, b.Len)
		}
		// Submit (ccnic_tx_burst).
		sent := q.TxBurst(p, bufs)
		fmt.Printf("submitted %d packets at t=%v\n", sent, p.Now())

		// Poll for loopback completions (ccnic_rx_burst).
		rx := make([]*ccnic.Buf, pkts)
		received := 0
		for received < sent {
			got := q.RxBurst(p, rx)
			for i := 0; i < got; i++ {
				b := rx[i]
				host.StreamRead(p, b.Addr, b.Len) // touch the payload
				fmt.Printf("  packet %d returned after %v\n", b.Seq, p.Now()-b.Born)
			}
			if got > 0 {
				q.Release(p, rx[:got]) // ccnic_buf_free
				received += got
			} else {
				p.Sleep(10 * sim.Nanosecond)
			}
		}
		fmt.Printf("done at t=%v\n", p.Now())
	})

	if err := tb.Kernel.RunUntil(sim.Millisecond); err != nil {
		panic(err)
	}
}
