// Kvstore: run the CliqueMap-style key-value server over the CC-NIC
// Overlay and the direct PCIe interface, sweeping application thread
// counts — the paper's §5.7 core-savings study in miniature.
package main

import (
	"fmt"

	"ccnic/internal/coherence"
	"ccnic/internal/device"
	"ccnic/internal/kvstore"
	"ccnic/internal/platform"
	"ccnic/internal/sim"
	"ccnic/internal/traffic"
)

func run(useOverlay bool, threads int, dist *traffic.SizeDist) float64 {
	k := sim.New()
	sys := coherence.NewSystem(k, platform.ICX())
	sys.SetPrefetch(0, true)

	hosts := make([]*coherence.Agent, threads)
	for i := range hosts {
		hosts[i] = sys.NewAgent(0, fmt.Sprintf("app%d", i))
	}
	var dev device.Device
	if useOverlay {
		ovs := make([]*coherence.Agent, 2*threads)
		for i := range ovs {
			ovs[i] = sys.NewAgent(1, "overlay")
		}
		dev = device.NewOverlay(sys, device.CCNICConfig(), platform.CX6(), hosts, ovs)
	} else {
		dev = device.NewPCIeNIC(sys, platform.CX6(), hosts)
	}

	res := kvstore.Run(kvstore.Config{
		Sys:          sys,
		Dev:          dev,
		Hosts:        hosts,
		Store:        kvstore.NewStore(sys, 0, 100_000, dist),
		Seed:         42,
		RatePerQueue: 10e6, // overload: measure the saturated rate
		Warmup:       30 * sim.Microsecond,
		Measure:      80 * sim.Microsecond,
	})
	return res.Mops()
}

func main() {
	dist := traffic.Ads(7)
	fmt.Printf("Key-value store, Ads distribution (mean object %.0fB), 95%% gets, Zipf 0.75\n\n", dist.Mean())
	fmt.Printf("%-8s %-14s %-14s\n", "threads", "CX6 direct", "CC-NIC overlay")
	for _, n := range []int{1, 2, 4, 8} {
		direct := run(false, n, traffic.Ads(7))
		overlay := run(true, n, traffic.Ads(7))
		fmt.Printf("%-8d %-14s %-14s\n", n,
			fmt.Sprintf("%.1f Mops", direct),
			fmt.Sprintf("%.1f Mops", overlay))
	}
	fmt.Println("\nThe overlay reaches a given throughput with fewer application")
	fmt.Println("threads: buffer management and signaling moved off the host cores.")
}
