// Latency: sweep offered load on each host-NIC interface and print
// throughput-latency points — a miniature of the paper's Fig 11, showing
// where CC-NIC's latency advantage comes from and where each interface
// saturates.
package main

import (
	"fmt"

	"ccnic"
	"ccnic/internal/sim"
)

func main() {
	const queues = 4
	for _, iface := range []ccnic.Interface{ccnic.CCNIC, ccnic.UnoptUPI, ccnic.E810, ccnic.CX6} {
		// Closed-loop probe for the peak rate.
		peak := ccnic.NewTestbed(ccnic.Config{
			Platform: "ICX", Interface: iface, Queues: queues, HostPrefetch: true,
		}).RunLoopback(ccnic.LoopbackOptions{
			PktSize: 64, Window: 128,
			Warmup: 30 * sim.Microsecond, Measure: 80 * sim.Microsecond,
		})

		fmt.Printf("%-10s peak %6.1f Mpps\n", iface, peak.Mpps())
		for _, frac := range []float64{0.1, 0.4, 0.7} {
			tb := ccnic.NewTestbed(ccnic.Config{
				Platform: "ICX", Interface: iface, Queues: queues, HostPrefetch: true,
			})
			res := tb.RunLoopback(ccnic.LoopbackOptions{
				PktSize: 64,
				Rate:    frac * peak.PPS / queues,
				Warmup:  30 * sim.Microsecond, Measure: 80 * sim.Microsecond,
			})
			fmt.Printf("   %3.0f%% load: %6.1f Mpps, median %8v, p99 %8v\n",
				frac*100, res.Mpps(), res.Latency.Median(), res.Latency.Percentile(0.99))
		}
	}
}
